package replicate

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"diehard/internal/detect"
)

// Tests for the pipelined hash-then-vote engine (DESIGN.md §8). The
// contract under test: pipelining changes when replicas execute, never
// what the voter commits.

// chunkedProgram writes `rounds` buffers of `size` bytes with
// deterministic contents, doing a little heap work per round so there is
// real execution to overlap with voting.
func chunkedProgram(rounds, size int, deviant int, deviateAt int) Program {
	return func(ctx *Context) error {
		for r := 0; r < rounds; r++ {
			p, err := ctx.Alloc.Malloc(size)
			if err != nil {
				return err
			}
			fill := byte(r + 1)
			if ctx.Replica == deviant && r >= deviateAt {
				fill = 0xBD // the corrupted replica's divergent output
			}
			if err := ctx.Mem.Memset(p, fill, size); err != nil {
				return err
			}
			out := make([]byte, size)
			if err := ctx.Mem.ReadBytes(p, out); err != nil {
				return err
			}
			if err := ctx.Alloc.Free(p); err != nil {
				return err
			}
			if _, err := ctx.Out.Write(out); err != nil {
				return err
			}
		}
		return nil
	}
}

// resultFingerprint strips the fields a voting engine may not influence
// down to a comparable value.
func resultFingerprint(res *Result) string {
	s := fmt.Sprintf("agreed=%v uninit=%v survivors=%d rounds=%d out=%x",
		res.Agreed, res.UninitSuspected, res.Survivors, res.Rounds, res.Output)
	for _, r := range res.Replicas {
		s += fmt.Sprintf(" [seed=%x killed=%v completed=%v]", r.Seed, r.Killed, r.Completed)
	}
	return s
}

func TestPipelinedMatchesSequential(t *testing.T) {
	// The golden acceptance test: for any replica count, with and
	// without a mid-stream deviant, both engines commit byte-identical
	// output and report identical fates.
	for _, k := range []int{1, 2, 3, 4, 5, 8} {
		for _, deviant := range []int{-1, 1} {
			if deviant >= k || (deviant >= 0 && k < 3) {
				continue // a deviant needs a majority to lose against
			}
			name := fmt.Sprintf("k=%d/deviant=%d", k, deviant)
			prog := chunkedProgram(6, 512, deviant, 3)
			opts := Options{Replicas: k, HeapSize: testHeap, Seed: 77, BufferSize: 512}
			optsSeq := opts
			optsSeq.Voter = VoterSequential
			seq, err := Run(prog, nil, optsSeq)
			if err != nil {
				t.Fatalf("%s sequential: %v", name, err)
			}
			optsPipe := opts
			optsPipe.Voter = VoterPipelined
			pipe, err := Run(prog, nil, optsPipe)
			if err != nil {
				t.Fatalf("%s pipelined: %v", name, err)
			}
			if a, b := resultFingerprint(seq), resultFingerprint(pipe); a != b {
				t.Errorf("%s: engines disagree\nsequential: %s\npipelined:  %s", name, a, b)
			}
		}
	}
}

func TestPipelinedMidStreamDivergenceWithLaggingReplica(t *testing.T) {
	// Replica 1 emits three correct buffers and then diverges; replica 2
	// lags behind the others, so the healthy majority runs several
	// buffers ahead through the pipeline while rounds are still being
	// adjudicated. The deviant must die at its fourth buffer and the
	// majority's full output must be committed.
	const (
		rounds = 8
		size   = 256
	)
	prog := chunkedProgram(rounds, size, 1, 3)
	lagged := func(ctx *Context) error {
		if ctx.Replica == 2 {
			orig := ctx.Out
			ctx.Out = writerFunc(func(p []byte) (int, error) {
				time.Sleep(time.Millisecond)
				return orig.Write(p)
			})
		}
		return prog(ctx)
	}
	res, err := Run(lagged, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 31, BufferSize: size})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, size))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Fatalf("committed output corrupted: got %d bytes, want %d", len(res.Output), want.Len())
	}
	if !res.Replicas[1].Killed {
		t.Fatalf("mid-stream deviant survived: %+v", res)
	}
	if res.Survivors != 2 || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestPipelinedAllDisagreeTerminates(t *testing.T) {
	// Every replica produces a different stream (the signature of an
	// uninitialized read, §3.2): the run must terminate at the first
	// round, commit nothing, and unwind every replica with ErrKilled.
	errs := make(chan error, 3)
	prog := func(ctx *Context) error {
		payload := bytes.Repeat([]byte{byte(ctx.Replica + 1)}, DefaultBufferSize)
		for i := 0; i < DefaultPipelineDepth+2; i++ {
			if _, err := ctx.Out.Write(payload); err != nil {
				errs <- err
				return err
			}
		}
		errs <- nil
		return nil
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UninitSuspected || res.Agreed || len(res.Output) != 0 {
		t.Fatalf("result %+v", res)
	}
	for i := 0; i < 3; i++ {
		if e := <-errs; !errors.Is(e, ErrKilled) {
			t.Fatalf("replica unwound with %v, want ErrKilled", e)
		}
	}
}

func TestPipelinedCrashDuringVoteIsDiscarded(t *testing.T) {
	// Replica 0 crashes (a wild read, the simulated SIGSEGV) after two
	// good buffers while the survivors — slowed so the crash message
	// waits in the pipeline during adjudication — continue to the end.
	// The crash must discard replica 0's staged partial output and
	// nothing else.
	const (
		rounds = 6
		size   = 256
	)
	prog := chunkedProgram(rounds, size, -1, 0)
	crashy := func(ctx *Context) error {
		if ctx.Replica == 0 {
			crashAfter := 2 * size
			written := 0
			orig := ctx.Out
			ctx.Out = writerFunc(func(p []byte) (int, error) {
				if written >= crashAfter {
					if _, err := ctx.Mem.Load8(0xdead0000); err != nil {
						return 0, err
					}
				}
				written += len(p)
				return orig.Write(p)
			})
		} else if ctx.Replica == 2 {
			orig := ctx.Out
			ctx.Out = writerFunc(func(p []byte) (int, error) {
				time.Sleep(time.Millisecond)
				return orig.Write(p)
			})
		}
		return prog(ctx)
	}
	res, err := Run(crashy, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 34, BufferSize: size})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, size))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Fatalf("survivor output corrupted: got %d bytes, want %d", len(res.Output), want.Len())
	}
	if res.Replicas[0].Err == nil {
		t.Fatal("crashed replica has no recorded error")
	}
	if res.Replicas[0].Killed || res.Replicas[0].Completed {
		t.Fatalf("crash misclassified: %+v", res.Replicas[0])
	}
	if res.Survivors != 2 || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

func TestPipelinedVoterStress(t *testing.T) {
	// Eight replicas, many small rounds, a mid-stream deviant and a
	// laggard: the concurrency soak the CI race job runs. Output
	// correctness is asserted exactly, not statistically.
	const (
		k      = 8
		rounds = 48
		size   = 512
	)
	prog := chunkedProgram(rounds, size, 5, 17)
	mixed := func(ctx *Context) error {
		if ctx.Replica == 3 {
			orig := ctx.Out
			ctx.Out = writerFunc(func(p []byte) (int, error) {
				time.Sleep(50 * time.Microsecond)
				return orig.Write(p)
			})
		}
		return prog(ctx)
	}
	res, err := Run(mixed, nil, Options{Replicas: k, HeapSize: testHeap, Seed: 35, BufferSize: size})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, size))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Fatalf("stress output corrupted: got %d bytes, want %d", len(res.Output), want.Len())
	}
	if !res.Replicas[5].Killed || res.Survivors != k-1 || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

func TestPipelineDepthBoundsRunahead(t *testing.T) {
	// With PipelineDepth = 1 the engine degrades gracefully toward
	// lock-step; the committed output must not change.
	prog := chunkedProgram(5, 256, -1, 0)
	deep, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 36, BufferSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 36, BufferSize: 256, PipelineDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deep.Output, shallow.Output) {
		t.Fatal("pipeline depth changed the committed output")
	}
}

func TestAdaptiveWindowController(t *testing.T) {
	// Drives one pipeWriter's credit window directly. A writer the
	// voter always finds saturated widens one unit per release up to
	// the 2×base cap; a writer the voter always finds drained narrows
	// to the lock-step floor (window 1, with ±1 dither because a
	// exactly-matched pair re-triggers the saturation rule).
	const base = 4
	w := newPipeWriter(64, base)
	fill := func() {
		for {
			w.mu.Lock()
			full := w.inFlight >= w.window
			w.mu.Unlock()
			if full {
				return
			}
			if !w.acquire() {
				t.Fatal("acquire refused credit on a live writer")
			}
		}
	}
	win := base
	for i := 0; i < 3*base; i++ {
		fill()
		win = w.release()
		if win < 1 || win > 2*base {
			t.Fatalf("window %d escaped [1, %d]", win, 2*base)
		}
	}
	if win != 2*base {
		t.Fatalf("saturated writer's window = %d, want cap %d", win, 2*base)
	}
	w.mu.Lock()
	pending := w.inFlight
	w.mu.Unlock()
	for j := 0; j < pending; j++ {
		win = w.release()
	}
	for i := 0; i < 4*base; i++ {
		if !w.acquire() {
			t.Fatal("acquire refused credit on a live writer")
		}
		win = w.release()
		if win < 1 {
			t.Fatalf("window %d fell below 1", win)
		}
	}
	if win > 2 {
		t.Fatalf("drained writer's window = %d, want lock-step floor (1, dither 2)", win)
	}
	w.markDead()
	if w.acquire() {
		t.Fatal("acquire granted credit after markDead")
	}
}

func TestAdaptiveWindowWidensUnderLaggard(t *testing.T) {
	// One replica sleeps on every write; the fast siblings saturate
	// their allowance while the voter waits on it, so their windows
	// widen past the configured base — and the committed output is
	// still byte-exact. The sequential voter has no window at all:
	// its peak stays zero.
	const (
		rounds = 32
		size   = 256
		depth  = 3
	)
	prog := chunkedProgram(rounds, size, -1, 0)
	mixed := func(ctx *Context) error {
		if ctx.Replica == 0 {
			orig := ctx.Out
			ctx.Out = writerFunc(func(p []byte) (int, error) {
				time.Sleep(200 * time.Microsecond)
				return orig.Write(p)
			})
		}
		return prog(ctx)
	}
	res, err := Run(mixed, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 37, BufferSize: size, PipelineDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, size))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Fatalf("laggard run corrupted output: got %d bytes, want %d", len(res.Output), want.Len())
	}
	if !res.Agreed || res.Survivors != 3 {
		t.Fatalf("result %+v", res)
	}
	if res.PipelineDepthPeak <= depth || res.PipelineDepthPeak > 2*depth {
		t.Fatalf("peak window %d, want in (%d, %d]", res.PipelineDepthPeak, depth, 2*depth)
	}
	seq, err := Run(mixed, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 37, BufferSize: size, PipelineDepth: depth, Voter: VoterSequential})
	if err != nil {
		t.Fatal(err)
	}
	if seq.PipelineDepthPeak != 0 {
		t.Fatalf("sequential voter reported a pipeline window peak %d", seq.PipelineDepthPeak)
	}
}

// --- replica restart (Options.MaxRestarts) ---

func TestRestartRestoresQuorum(t *testing.T) {
	const rounds = 6
	prog := chunkedProgram(rounds, DefaultBufferSize, 2, 2)
	res, err := Run(prog, nil, Options{
		Replicas: 3, Seed: 0x0e57a87, HeapSize: 8 << 20, MaxRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, DefaultBufferSize))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Fatalf("restarted run committed wrong output (%d bytes, want %d)", len(res.Output), want.Len())
	}
	if !res.Agreed {
		t.Error("quorum was restored but the run is not marked agreed")
	}
	if res.Survivors != 3 {
		t.Errorf("survivors = %d, want 3 (replacement restored the quorum)", res.Survivors)
	}
	if len(res.Replicas) != 4 {
		t.Fatalf("replica reports = %d, want 4 (3 originals + 1 replacement)", len(res.Replicas))
	}
	if !res.Replicas[2].Killed {
		t.Error("the deviant replica was not killed")
	}
	rep := res.Replicas[3]
	if !rep.Restarted || !rep.Completed || rep.Killed {
		t.Errorf("replacement report = %+v, want restarted and completed", rep)
	}
	if rep.Seed == 0 || rep.Seed == res.Replicas[2].Seed {
		t.Error("replacement did not get a fresh derived seed")
	}
}

func TestRestartBudgetExhaustedByPersistentDivergence(t *testing.T) {
	// Every replica index >= 2 deviates, so each replacement's replay
	// diverges from the committed prefix and is killed in turn until the
	// budget runs out; the two honest replicas finish as the quorum.
	const rounds = 4
	prog := func(ctx *Context) error {
		for r := 0; r < rounds; r++ {
			fill := byte(r + 1)
			if ctx.Replica >= 2 && r >= 1 {
				fill = 0xBD ^ byte(ctx.Replica)
			}
			if _, err := ctx.Out.Write(bytes.Repeat([]byte{fill}, DefaultBufferSize)); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(prog, nil, Options{
		Replicas: 3, Seed: 0xbad5eed, HeapSize: 8 << 20, MaxRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 5 {
		t.Fatalf("replica reports = %d, want 5 (3 originals + 2 failed replacements)", len(res.Replicas))
	}
	killed := 0
	for _, rep := range res.Replicas {
		if rep.Killed {
			killed++
		}
	}
	if killed != 3 {
		t.Errorf("killed = %d, want 3 (deviant + both replacements)", killed)
	}
	if res.Survivors != 2 {
		t.Errorf("survivors = %d, want the 2 honest replicas", res.Survivors)
	}
	var want bytes.Buffer
	for r := 0; r < rounds; r++ {
		want.Write(bytes.Repeat([]byte{byte(r + 1)}, DefaultBufferSize))
	}
	if !bytes.Equal(res.Output, want.Bytes()) {
		t.Error("committed output corrupted by failed restarts")
	}
}

func TestRestartIgnoredBySequentialVoter(t *testing.T) {
	prog := chunkedProgram(3, DefaultBufferSize, 1, 1)
	res, err := Run(prog, nil, Options{
		Replicas: 3, Seed: 0x5e9, HeapSize: 8 << 20, MaxRestarts: 2, Voter: VoterSequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 3 {
		t.Fatalf("sequential voter spawned replacements: %d reports", len(res.Replicas))
	}
	if res.Survivors != 2 {
		t.Errorf("survivors = %d, want 2", res.Survivors)
	}
}

// TestKilledReplicaEvidenceFeedsTriage is the detection integration:
// the deviant replica corrupts its own heap (an overflow) before
// diverging; after the voter kills it, its canary evidence is in the
// report and TriageKilled localizes the culprit allocation site.
func TestKilledReplicaEvidenceFeedsTriage(t *testing.T) {
	prog := func(ctx *Context) error {
		p, err := ctx.Alloc.Malloc(56)
		if err != nil {
			return err
		}
		n := 56
		if ctx.Replica == 2 {
			n = 60 // 4 bytes past the request: the heap error
		}
		if err := ctx.Mem.Memset(p, 'A', n); err != nil {
			return err
		}
		if err := ctx.Alloc.Free(p); err != nil {
			return err
		}
		out := bytes.Repeat([]byte{'o'}, DefaultBufferSize)
		if ctx.Replica == 2 {
			out[17] = 'X' // ...and the divergent output that gets it killed
		}
		_, err = ctx.Out.Write(out)
		return err
	}
	res, err := Run(prog, nil, Options{
		Replicas: 3, Seed: 0xde7ec7, HeapSize: 8 << 20, Detect: true, MaxRestarts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replicas[2].Killed {
		t.Fatal("deviant replica was not killed")
	}
	if len(res.Replicas[2].Evidence) == 0 {
		t.Fatal("killed replica carried no detection evidence")
	}
	tri := res.TriageKilled(detect.KindOverflow)
	if tri == nil {
		t.Fatal("TriageKilled returned nil")
	}
	if tri.Culprit != 0 {
		t.Errorf("culprit site = %d (votes %v), want 0", tri.Culprit, tri.Votes)
	}
	// Honest replicas carry no evidence; their reports must stay clean.
	for i := 0; i < 2; i++ {
		if len(res.Replicas[i].Evidence) != 0 {
			t.Errorf("honest replica %d has evidence: %+v", i, res.Replicas[i].Evidence)
		}
	}
	if res.Survivors != 3 {
		t.Errorf("survivors = %d, want 3 (restart restored the quorum)", res.Survivors)
	}
}
