package replicate

import "bytes"

// This file is the voting core shared by both engines: the chunk message
// format, the 64-bit chunk hash, and the §5.2 adjudication of one round.
// Keeping adjudication in one function is what guarantees the pipelined
// and sequential voters commit byte-identical output.

// chunk is one voting-round message from a replica to the voter: up to
// BufferSize bytes of staged output, tagged with its 64-bit hash so the
// voter can group buffers without touching their bytes (hash-then-vote,
// DESIGN.md §8). done marks the replica's final, possibly-partial
// buffer; err carries the program error of a crashed replica.
type chunk struct {
	data []byte
	hash uint64
	done bool
	err  error
}

// chunkHash tags a voting buffer with 64-bit FNV-1a over its bytes plus
// the done flag, so a final partial buffer never groups with a full
// buffer of identical bytes. The hash is computed in the replica's own
// goroutine, off the voter's critical path. FNV-1a is inlined rather
// than taken from hash/fnv because this runs once per buffer inside
// every replica's write path: the open-coded loop keeps it
// allocation-free and inlinable, where hash/fnv allocates a hash.Hash64
// per call (non-hot-path hashing, like exps.ScalingPoint.OutputHash,
// uses the stdlib).
func chunkHash(data []byte, done bool) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	if done {
		h ^= 0xff
		h *= prime64
	}
	return h
}

// decision is the voter's adjudication of one round.
type decision struct {
	// winner holds the replica ids of the committed agreement group;
	// msgs[winner[0]].data is the committed buffer. Empty only when
	// noAgreement is set.
	winner []int
	// losers are live replicas killed this round for disagreeing.
	losers []int
	// noAgreement: no two replicas agree and more than one answer
	// exists — §3.2's uninitialized-read detection; the run terminates.
	noAgreement bool
	// quorumLost: the buffer was committed by a lone replica in a run
	// that started with several (availability streaming, not agreement).
	quorumLost bool
}

// adjudicate decides one voting round per §5.2. ids are the live
// replicas in ascending order; msgs their buffers; k the run's original
// replica count. Buffers are grouped hash-first: byte comparison runs
// only between hash-equal buffers (confirming agreement exactly, so a
// hash collision can never merge replicas that §5.2's byte-wise protocol
// would separate), and buffers with different hashes are already known
// unequal. The winner is the largest group; ties break to the group
// containing the smallest replica id, so the commit is deterministic for
// any replica count and either engine.
func adjudicate(ids []int, msgs map[int]chunk, k int) decision {
	type group struct {
		repr chunk
		ids  []int
	}
	var groups []*group
	byHash := make(map[uint64][]*group, len(ids))
	for _, id := range ids {
		m := msgs[id]
		var g *group
		for _, cand := range byHash[m.hash] {
			if cand.repr.done == m.done && bytes.Equal(cand.repr.data, m.data) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{repr: m}
			groups = append(groups, g)
			byHash[m.hash] = append(byHash[m.hash], g)
		}
		g.ids = append(g.ids, id)
	}
	win := groups[0]
	for _, g := range groups[1:] {
		// Strict >: the earliest-created group (the one holding the
		// smallest replica id) wins ties.
		if len(g.ids) > len(win.ids) {
			win = g
		}
	}
	var d decision
	if len(groups) > 1 && len(win.ids) < 2 {
		// No two replicas agree: terminate, killing every live replica.
		d.noAgreement = true
		d.losers = ids
		return d
	}
	d.winner = win.ids
	if k > 1 && len(win.ids) < 2 {
		d.quorumLost = true
	}
	inWinner := make(map[int]bool, len(win.ids))
	for _, id := range win.ids {
		inWinner[id] = true
	}
	for _, id := range ids {
		if !inWinner[id] {
			d.losers = append(d.losers, id)
		}
	}
	return d
}

// replicaState tracks a replica through a voting engine's run.
type replicaState int

const (
	rsRunning replicaState = iota
	rsFinished
	rsCrashed
	rsKilled
)

// liveCount counts replicas still producing buffers.
func liveCount(states []replicaState) int {
	n := 0
	for _, s := range states {
		if s == rsRunning {
			n++
		}
	}
	return n
}
