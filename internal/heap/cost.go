package heap

import "diehard/internal/vmem"

// Work-unit charges. Each allocator charges itself these amounts for the
// operations it actually performs, giving the cycle model an honest,
// implementation-derived cost rather than a tuned curve. The values are
// rough instruction counts for the corresponding operations on the
// paper-era x86 hardware; only their relative magnitudes matter for the
// normalized-runtime figures.
const (
	// WorkProbe: draw a random index and test a bitmap bit (DieHard §4.2).
	WorkProbe = 3
	// WorkBitmap: set or clear a bitmap bit plus counter update.
	WorkBitmap = 2
	// WorkSizeClass: size-to-class conversion (a shift, per §4.1).
	WorkSizeClass = 1
	// WorkFreelistStep: follow one freelist link or boundary tag.
	WorkFreelistStep = 2
	// WorkHeader: read or write an object header/boundary tag.
	WorkHeader = 1
	// WorkMmap: one simulated mmap/munmap system call.
	WorkMmap = 400
	// WorkMarkWord: conservative GC scanning one word.
	WorkMarkWord = 1
	// WorkLockWalk: the Windows-XP-default-heap per-operation overhead
	// (lock acquisition plus lookaside/list walking). The paper observes
	// that the default Windows allocator is substantially slower than
	// the Lea allocator; this constant is that observation.
	WorkLockWalk = 60
	// WorkRandomFill: filling one word with random values (replicated
	// mode, §4.1/§4.2).
	WorkRandomFill = 2
	// WorkCheck: one dynamic safety check in the fail-stop policy.
	WorkCheck = 2
)

// TLB penalties: a first-level miss whose translation is still warm in
// the page-walk caches costs a short refill; a miss in both levels is a
// full page walk, costing tens of cycles on paper-era x86.
const (
	TLBRefillPenalty = 8
	TLBWalkPenalty   = 30
)

// Cycles computes the modeled execution cost of a run: every memory
// access costs one cycle, TLB misses add refill or walk penalties, and
// the allocator adds its accumulated work units. Figure 5 normalizes
// this quantity against the baseline allocator's.
func Cycles(space *vmem.Space, alloc *Stats) uint64 {
	m := space.Stats()
	warm := m.TLBMisses - m.TLB2Misses
	return m.Accesses() + TLBRefillPenalty*warm + TLBWalkPenalty*m.TLB2Misses + alloc.WorkUnits
}
