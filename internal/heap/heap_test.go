package heap

import (
	"errors"
	"testing"

	"diehard/internal/vmem"
)

// bumpAlloc is a minimal Allocator for exercising the package helpers.
type bumpAlloc struct {
	space *vmem.Space
	next  Ptr
	end   Ptr
	sizes map[Ptr]int
	stats Stats
}

func newBump(t *testing.T) *bumpAlloc {
	t.Helper()
	s := vmem.NewSpace()
	base, err := s.Map(1<<20, vmem.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	return &bumpAlloc{space: s, next: base, end: base + 1<<20, sizes: map[Ptr]int{}}
}

func (b *bumpAlloc) Malloc(size int) (Ptr, error) {
	if size < 0 {
		return Null, errors.New("negative")
	}
	if size == 0 {
		size = 1
	}
	n := Ptr((size + 7) &^ 7)
	if b.next+n > b.end {
		b.stats.FailedMallocs++
		return Null, ErrOutOfMemory
	}
	p := b.next
	b.next += n
	b.sizes[p] = size
	CountMalloc(&b.stats, size, int(n))
	return p, nil
}

func (b *bumpAlloc) Free(p Ptr) error {
	if size, ok := b.sizes[p]; ok {
		delete(b.sizes, p)
		CountFree(&b.stats, (size+7)&^7)
	}
	return nil
}

func (b *bumpAlloc) SizeOf(p Ptr) (int, bool) {
	size, ok := b.sizes[p]
	return size, ok
}

func (b *bumpAlloc) Mem() *vmem.Space { return b.space }
func (b *bumpAlloc) Stats() *Stats    { return &b.stats }
func (b *bumpAlloc) Name() string     { return "bump" }

func TestCallocZeroesAndCounts(t *testing.T) {
	a := newBump(t)
	p, err := Calloc(a, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := a.Mem().ReadBytes(p, buf); err != nil {
		t.Fatal(err)
	}
	for i, x := range buf {
		if x != 0 {
			t.Fatalf("byte %d = %#x", i, x)
		}
	}
}

func TestCallocRejectsNegativeAndOverflow(t *testing.T) {
	a := newBump(t)
	if _, err := Calloc(a, -1, 8); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := Calloc(a, 8, -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := Calloc(a, 1<<40, 1<<40); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("multiplication overflow: %v", err)
	}
}

func TestCallocZeroTotal(t *testing.T) {
	a := newBump(t)
	p, err := Calloc(a, 0, 8)
	if err != nil || p == Null {
		t.Fatalf("calloc(0): %v %v", p, err)
	}
}

func TestReallocSemantics(t *testing.T) {
	a := newBump(t)
	// Realloc(nil, n) == malloc.
	p, err := Realloc(a, Null, 64)
	if err != nil || p == Null {
		t.Fatalf("realloc(nil): %v %v", p, err)
	}
	if err := a.Mem().Store64(p, 0xAB); err != nil {
		t.Fatal(err)
	}
	// Grow: contents preserved, old freed.
	q, err := Realloc(a, p, 256)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := a.Mem().Load64(q)
	if v != 0xAB {
		t.Fatalf("grow lost contents: %#x", v)
	}
	if _, ok := a.SizeOf(p); ok {
		t.Fatal("old object not freed")
	}
	// Shrink: prefix preserved.
	r, err := Realloc(a, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = a.Mem().Load64(r)
	if v != 0xAB {
		t.Fatalf("shrink lost contents: %#x", v)
	}
	// Realloc(p, 0) == free.
	z, err := Realloc(a, r, 0)
	if err != nil || z != Null {
		t.Fatalf("realloc(p,0): %v %v", z, err)
	}
	if _, ok := a.SizeOf(r); ok {
		t.Fatal("realloc(p,0) did not free")
	}
	// Realloc of an unknown pointer reports an invalid free.
	var inv *InvalidFreeError
	if _, err := Realloc(a, 0xdead0000, 8); !errors.As(err, &inv) {
		t.Fatalf("bogus realloc: %v", err)
	}
}

func TestCountersBalance(t *testing.T) {
	a := newBump(t)
	var ptrs []Ptr
	for i := 1; i <= 10; i++ {
		p, err := a.Malloc(i * 8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	st := a.Stats()
	if st.Mallocs != 10 || st.LiveObjects != 10 {
		t.Fatalf("%+v", st)
	}
	if st.PeakLiveBytes != st.LiveBytes {
		t.Fatalf("peak %d != live %d at high-water", st.PeakLiveBytes, st.LiveBytes)
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	st = a.Stats()
	if st.LiveObjects != 0 || st.LiveBytes != 0 {
		t.Fatalf("after frees: %+v", st)
	}
	if st.PeakLiveBytes == 0 {
		t.Fatal("peak lost")
	}
}

func TestErrorClassification(t *testing.T) {
	fault := &vmem.Fault{Addr: 1, Kind: vmem.AccessLoad, Reason: "x"}
	corr := &CorruptionError{Detail: "x"}
	abort := &AbortError{Reason: "x"}
	if !IsCrash(fault) || !IsCrash(corr) {
		t.Fatal("faults and corruption are crashes")
	}
	if IsCrash(abort) || IsCrash(ErrOutOfMemory) || IsCrash(nil) {
		t.Fatal("aborts/OOM/nil are not crashes")
	}
	if !IsAbort(abort) || IsAbort(fault) || IsAbort(nil) {
		t.Fatal("abort classification wrong")
	}
	// Error strings identify their origin.
	for _, e := range []error{corr, abort, &InvalidFreeError{Addr: 0x10}} {
		if e.Error() == "" {
			t.Fatal("empty error string")
		}
	}
}

func TestCycleModel(t *testing.T) {
	s := vmem.NewSpace()
	s.EnableTLB()
	base, _ := s.Map(64*vmem.PageSize, vmem.ProtRW)
	// Warm accesses on one page: 1 L1 miss (cold: also an L2 miss).
	for i := 0; i < 100; i++ {
		_ = s.Store8(base, 1)
	}
	var st Stats
	st.WorkUnits = 7
	got := Cycles(s, &st)
	m := s.Stats()
	want := m.Accesses() + TLBWalkPenalty*m.TLB2Misses +
		TLBRefillPenalty*(m.TLBMisses-m.TLB2Misses) + 7
	if got != want {
		t.Fatalf("Cycles = %d, want %d", got, want)
	}
	if got <= 100 {
		t.Fatalf("cycle count %d implausibly low", got)
	}
}

func TestWarmMissesCheaperThanCold(t *testing.T) {
	// Accessing 128 pages repeatedly: the first round pays cold walks,
	// later rounds only warm refills (128 < L2 capacity).
	s := vmem.NewSpace()
	s.EnableTLB()
	base, _ := s.Map(256*vmem.PageSize, vmem.ProtRW)
	for round := 0; round < 10; round++ {
		for p := 0; p < 128; p++ {
			_ = s.Store8(base+uint64(p)*vmem.PageSize, 1)
		}
	}
	m := s.Stats()
	if m.TLB2Misses != 128 {
		t.Fatalf("cold walks = %d, want 128", m.TLB2Misses)
	}
	if m.TLBMisses != 10*128 {
		t.Fatalf("L1 misses = %d, want 1280", m.TLBMisses)
	}
}
