// Package heap defines the allocator abstraction shared by the DieHard
// allocator and every baseline in this repository, together with the
// error vocabulary of the simulated runtime (out of memory, abort,
// heap corruption) and the cycle cost model used by the Figure 5
// experiments.
//
// All allocators manage memory inside a vmem.Space; the addresses they
// return are simulated pointers (Ptr). Applications perform all data
// access through the Space, so memory errors have their native
// consequences rather than being intercepted by Go's runtime.
package heap

import (
	"errors"
	"fmt"
	"sync/atomic"

	"diehard/internal/vmem"
)

// Ptr is a simulated pointer: an address within a vmem.Space. The zero
// value is the null pointer.
type Ptr = uint64

// Null is the simulated null pointer. Address zero is never mapped.
const Null Ptr = 0

// FatPtr is a generation-tagged pointer (DESIGN.md §15): the address
// plus the generation the slot carried when this pointer was issued.
// A heap built with generation tags hands these out from MallocFat and
// verifies the tag on FreeFat and on every access through a
// generation-checked Memory view, so a stale pointer — one whose slot
// has since been freed or reallocated — is detected deterministically
// rather than probabilistically.
//
// Gen is 64-bit so large objects can carry a never-wrapping per-heap
// counter; small-object slots store 32-bit tags (zero-extended here)
// with a retirement scheme that makes wraparound impossible (§15).
// The zero value (Gen 0) is never issued for a live object.
type FatPtr struct {
	Addr Ptr
	Gen  uint64
}

// ErrOutOfMemory is returned by Malloc when the allocator cannot satisfy
// the request. DieHard returns it when a size class reaches its 1/M
// threshold (§4.2: "At threshold: no more memory").
var ErrOutOfMemory = errors.New("heap: out of memory")

// AbortError is raised by fail-stop runtimes (the CCured-like policy in
// internal/policies) when a dynamic check fails. It corresponds to the
// "abort" entries of Table 1 and is distinct from a crash (vmem.Fault):
// an abort is a controlled, detected termination.
type AbortError struct {
	Reason string
}

func (e *AbortError) Error() string { return "abort: " + e.Reason }

// CorruptionError is raised by an allocator that detects its own metadata
// has been damaged (for example, the Lea-style baseline tripping over a
// smashed boundary tag). The paper's baselines usually crash rather than
// detect; the Lea baseline raises this only in the places the real
// allocator would have faulted or failed an assertion.
type CorruptionError struct {
	Detail string
}

func (e *CorruptionError) Error() string { return "heap corruption: " + e.Detail }

// InvalidFreeError reports a free of an address the allocator does not
// own or has already freed, for allocators that report rather than
// ignore such frees (DieHard silently ignores them, per §4.3).
type InvalidFreeError struct {
	Addr Ptr
}

func (e *InvalidFreeError) Error() string {
	return fmt.Sprintf("invalid free of %#x", e.Addr)
}

// Stats aggregates allocator activity. WorkUnits is the honest cost
// accounting each allocator maintains for the cycle model: every
// implementation charges itself for the operations it performs (bitmap
// probes, freelist walks, header writes, mmap calls, GC marking).
type Stats struct {
	Mallocs        uint64
	Frees          uint64
	FailedMallocs  uint64
	IgnoredFrees   uint64 // invalid/double frees dropped (DieHard semantics)
	BytesRequested uint64
	BytesAllocated uint64 // after rounding/padding
	LiveObjects    uint64
	LiveBytes      uint64 // allocated (rounded) bytes currently live
	PeakLiveBytes  uint64
	WorkUnits      uint64
	Probes         uint64 // DieHard bitmap probes (§4.2 expected-probe bound)
	CASRetries     uint64 // lock-free CAS replays (probe-stream/occupancy/refill losses)
	RemoteFrees    uint64 // frees routed through the remote-free ring (counted at drain)
	RemoteDrains   uint64 // non-empty ring drain batches (mean batch = RemoteFrees/RemoteDrains)
	Quarantined    uint64 // frees intercepted into the quarantine FIFO (enqueues, duplicates included)
	QuarantineOut  uint64 // quarantine releases actually applied (bit cleared; duplicates count IgnoredFrees)
	StaleFrees     uint64 // generation-tagged frees rejected because the tag was stale (DESIGN.md §15)
	Retired        uint64 // slots permanently retired at the generation ceiling (never reused, held live)
	Collections    uint64 // GC only
}

// SnapshotAtomic returns a copy of st with every field loaded
// atomically. This is the only correct way to read counters while a
// goroutine-safe allocator is running: the direct struct copy
// `*a.Stats()` races with the atomic writers (each field is torn-free
// here, though the copy as a whole is not a consistent cut — exactness
// holds at quiescence, e.g. after a drain barrier). Sequential
// allocators may use either form.
func (st *Stats) SnapshotAtomic() Stats {
	return Stats{
		Mallocs:        atomic.LoadUint64(&st.Mallocs),
		Frees:          atomic.LoadUint64(&st.Frees),
		FailedMallocs:  atomic.LoadUint64(&st.FailedMallocs),
		IgnoredFrees:   atomic.LoadUint64(&st.IgnoredFrees),
		BytesRequested: atomic.LoadUint64(&st.BytesRequested),
		BytesAllocated: atomic.LoadUint64(&st.BytesAllocated),
		LiveObjects:    atomic.LoadUint64(&st.LiveObjects),
		LiveBytes:      atomic.LoadUint64(&st.LiveBytes),
		PeakLiveBytes:  atomic.LoadUint64(&st.PeakLiveBytes),
		WorkUnits:      atomic.LoadUint64(&st.WorkUnits),
		Probes:         atomic.LoadUint64(&st.Probes),
		CASRetries:     atomic.LoadUint64(&st.CASRetries),
		RemoteFrees:    atomic.LoadUint64(&st.RemoteFrees),
		RemoteDrains:   atomic.LoadUint64(&st.RemoteDrains),
		Quarantined:    atomic.LoadUint64(&st.Quarantined),
		QuarantineOut:  atomic.LoadUint64(&st.QuarantineOut),
		StaleFrees:     atomic.LoadUint64(&st.StaleFrees),
		Retired:        atomic.LoadUint64(&st.Retired),
		Collections:    atomic.LoadUint64(&st.Collections),
	}
}

// Memory is the data-access interface applications use. *vmem.Space
// implements it directly; the policy runtimes in internal/policies wrap
// it to add dynamic checks (CCured-like fail-stop) or failure-oblivious
// semantics (dropped writes, manufactured reads). Routing application
// accesses through this interface is what lets those systems be
// reproduced empirically in Table 1.
//
// Beyond single-word loads and stores, the interface carries bulk fast
// paths (ReadBytes, WriteBytes, Memset, MemMove, FindByte) so string and
// buffer operations can run at page-frame speed on the radix page table
// (DESIGN.md §2) instead of making one interface call per byte. Checked
// runtimes are free to implement them byte-at-a-time when their
// semantics demand it.
type Memory interface {
	Load8(addr uint64) (byte, error)
	Store8(addr uint64, v byte) error
	Load32(addr uint64) (uint32, error)
	Store32(addr uint64, v uint32) error
	Load64(addr uint64) (uint64, error)
	Store64(addr uint64, v uint64) error
	ReadBytes(addr uint64, b []byte) error
	WriteBytes(addr uint64, b []byte) error
	Memset(addr uint64, v byte, n int) error
	MemMove(dst, src uint64, n int) error
	// FindByte scans forward from addr for c, examining at most limit
	// bytes, returning the offset from addr. It visits exactly the
	// bytes a Load8 loop would visit (so it faults in the same places)
	// and is the primitive behind the libc string scans.
	FindByte(addr uint64, c byte, limit int) (idx int, found bool, err error)
}

var _ Memory = (*vmem.Space)(nil)

// Allocator is the malloc/free interface every runtime in the repository
// implements.
type Allocator interface {
	// Malloc allocates size bytes and returns the simulated address.
	Malloc(size int) (Ptr, error)
	// Free releases an allocation. Semantics on invalid input differ by
	// allocator, exactly as they do between the real systems: DieHard
	// ignores, Lea corrupts, the fail-stop policy aborts.
	Free(p Ptr) error
	// SizeOf reports the usable size of an allocated object, used by
	// Realloc and by DieHard's checked libc replacements (§4.4).
	// ok is false if p is not a currently allocated object.
	SizeOf(p Ptr) (size int, ok bool)
	// Mem returns the address space this allocator manages memory in.
	Mem() *vmem.Space
	// Stats returns the allocator's counters, updated in place.
	Stats() *Stats
	// Name identifies the allocator in experiment reports.
	Name() string
}

// countMalloc updates shared counters for a successful allocation of
// rounded bytes serving a request of size bytes.
func countMalloc(st *Stats, size, rounded int) {
	st.Mallocs++
	st.BytesRequested += uint64(size)
	st.BytesAllocated += uint64(rounded)
	st.LiveObjects++
	st.LiveBytes += uint64(rounded)
	if st.LiveBytes > st.PeakLiveBytes {
		st.PeakLiveBytes = st.LiveBytes
	}
}

// countFree updates shared counters for a successful free of rounded
// bytes.
func countFree(st *Stats, rounded int) {
	st.Frees++
	st.LiveObjects--
	st.LiveBytes -= uint64(rounded)
}

// CountMalloc is exported for allocator implementations in sibling
// packages.
func CountMalloc(st *Stats, size, rounded int) { countMalloc(st, size, rounded) }

// CountFree is exported for allocator implementations in sibling
// packages.
func CountFree(st *Stats, rounded int) { countFree(st, rounded) }

// CountMallocAtomic is CountMalloc for goroutine-safe allocators: every
// counter update is atomic, and the live-bytes high-water mark is
// maintained with a CAS loop. The single-goroutine baselines keep the
// unsynchronized CountMalloc; only allocators that admit concurrent
// mallocs pay for atomics.
func CountMallocAtomic(st *Stats, size, rounded int) {
	atomic.AddUint64(&st.Mallocs, 1)
	atomic.AddUint64(&st.BytesRequested, uint64(size))
	atomic.AddUint64(&st.BytesAllocated, uint64(rounded))
	atomic.AddUint64(&st.LiveObjects, 1)
	live := atomic.AddUint64(&st.LiveBytes, uint64(rounded))
	for {
		peak := atomic.LoadUint64(&st.PeakLiveBytes)
		if live <= peak || atomic.CompareAndSwapUint64(&st.PeakLiveBytes, peak, live) {
			return
		}
	}
}

// CountFreeAtomic is CountFree for goroutine-safe allocators.
func CountFreeAtomic(st *Stats, rounded int) {
	atomic.AddUint64(&st.Frees, 1)
	atomic.AddUint64(&st.LiveObjects, ^uint64(0))
	atomic.AddUint64(&st.LiveBytes, ^(uint64(rounded) - 1))
}

// CountMallocBatch publishes n allocations' counters at once: the
// magazine front end (DESIGN.md §11) counts served mallocs locally and
// pushes them here at refill/flush/drain boundaries, so the malloc fast
// path touches no shared counter at all. reqBytes is the sum of the
// requested sizes; allocBytes the sum of the rounded slot sizes.
func CountMallocBatch(st *Stats, n int, reqBytes, allocBytes uint64) {
	st.Mallocs += uint64(n)
	st.BytesRequested += reqBytes
	st.BytesAllocated += allocBytes
	st.LiveObjects += uint64(n)
	st.LiveBytes += allocBytes
	if st.LiveBytes > st.PeakLiveBytes {
		st.PeakLiveBytes = st.LiveBytes
	}
}

// CountMallocBatchAtomic is CountMallocBatch for goroutine-safe
// allocators. Because the batch is published after the allocations were
// served, the live-bytes high-water mark is a lower bound on the true
// instantaneous peak (the same quiescent-exactness contract the
// magazine's drain barrier restores).
func CountMallocBatchAtomic(st *Stats, n int, reqBytes, allocBytes uint64) {
	atomic.AddUint64(&st.Mallocs, uint64(n))
	atomic.AddUint64(&st.BytesRequested, reqBytes)
	atomic.AddUint64(&st.BytesAllocated, allocBytes)
	atomic.AddUint64(&st.LiveObjects, uint64(n))
	live := atomic.AddUint64(&st.LiveBytes, allocBytes)
	for {
		peak := atomic.LoadUint64(&st.PeakLiveBytes)
		if live <= peak || atomic.CompareAndSwapUint64(&st.PeakLiveBytes, peak, live) {
			return
		}
	}
}

// CountFreeBatch publishes n frees' counters at once (magazine flush).
func CountFreeBatch(st *Stats, n int, allocBytes uint64) {
	st.Frees += uint64(n)
	st.LiveObjects -= uint64(n)
	st.LiveBytes -= allocBytes
}

// CountFreeBatchAtomic is CountFreeBatch for goroutine-safe allocators.
func CountFreeBatchAtomic(st *Stats, n int, allocBytes uint64) {
	atomic.AddUint64(&st.Frees, uint64(n))
	atomic.AddUint64(&st.LiveObjects, ^(uint64(n) - 1))
	atomic.AddUint64(&st.LiveBytes, ^(allocBytes - 1))
}

// Calloc allocates n objects of size bytes each and zeroes the memory,
// like C's calloc.
func Calloc(a Allocator, n, size int) (Ptr, error) {
	if n < 0 || size < 0 {
		return Null, fmt.Errorf("heap: negative calloc request %d x %d", n, size)
	}
	total := n * size
	if size != 0 && total/size != n {
		return Null, ErrOutOfMemory // multiplication overflow
	}
	p, err := a.Malloc(total)
	if err != nil {
		return Null, err
	}
	if total > 0 {
		if err := a.Mem().Memset(p, 0, total); err != nil {
			return Null, err
		}
	}
	return p, nil
}

// Realloc resizes an allocation like C's realloc: Realloc(a, Null, n)
// allocates, Realloc(a, p, 0) frees, and otherwise the contents are
// copied up to the smaller of the old and new sizes.
func Realloc(a Allocator, p Ptr, size int) (Ptr, error) {
	if p == Null {
		return a.Malloc(size)
	}
	if size == 0 {
		return Null, a.Free(p)
	}
	oldSize, ok := a.SizeOf(p)
	if !ok {
		// Mirror undefined behaviour policies: let the allocator's own
		// Free semantics decide how a bad pointer is handled.
		return Null, &InvalidFreeError{Addr: p}
	}
	np, err := a.Malloc(size)
	if err != nil {
		return Null, err
	}
	n := oldSize
	if size < n {
		n = size
	}
	if err := a.Mem().MemMove(np, p, n); err != nil {
		return Null, err
	}
	if err := a.Free(p); err != nil {
		return Null, err
	}
	return np, nil
}

// IsCrash reports whether err represents a simulated crash (segmentation
// fault or detected heap corruption) as opposed to a controlled abort or
// allocation failure.
func IsCrash(err error) bool {
	var f *vmem.Fault
	var c *CorruptionError
	return errors.As(err, &f) || errors.As(err, &c)
}

// IsAbort reports whether err is a fail-stop abort.
func IsAbort(err error) bool {
	var a *AbortError
	return errors.As(err, &a)
}
