package libc

import (
	"strings"
	"testing"

	"diehard/internal/core"
)

func newHeap(t *testing.T) *core.Heap {
	t.Helper()
	h, err := core.New(core.Options{HeapSize: 12 << 20, Seed: 0xabc})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestStrlenStrcpyRoundTrip(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(64)
	dst, _ := h.Malloc(64)
	if err := WriteString(m, src, "probabilistic"); err != nil {
		t.Fatal(err)
	}
	n, err := Strlen(m, src)
	if err != nil || n != 13 {
		t.Fatalf("Strlen = %d, %v", n, err)
	}
	if err := Strcpy(m, dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadString(m, dst, 64)
	if err != nil || got != "probabilistic" {
		t.Fatalf("copied %q, %v", got, err)
	}
}

func TestStrcpyOverflowsUnchecked(t *testing.T) {
	// The unchecked strcpy writes past the destination object: on a
	// DieHard heap this lands in the neighboring slot (no fault, no
	// metadata damage) — precisely the hazard §4.4 neutralizes.
	h := newHeap(t)
	m := h.Mem()
	long := strings.Repeat("A", 100)
	src, _ := h.Malloc(128)
	dst, _ := h.Malloc(8) // class size 8: 100 bytes overflow by 92+
	if err := WriteString(m, src, long); err != nil {
		t.Fatal(err)
	}
	if err := Strcpy(m, dst, src); err != nil {
		t.Fatalf("overflow within the heap should not fault: %v", err)
	}
	// Bytes beyond the 8-byte object were really written.
	b, err := m.Load8(dst + 20)
	if err != nil {
		t.Fatal(err)
	}
	if b != 'A' {
		t.Fatalf("overflow byte = %#x, want 'A'", b)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("DieHard metadata must survive data overflow: %v", err)
	}
}

func TestSafeStrcpyTruncatesAtObjectEnd(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	long := strings.Repeat("B", 100)
	src, _ := h.Malloc(128)
	dst, _ := h.Malloc(8)
	if err := WriteString(m, src, long); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrcpy(h, m, dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 { // 8-byte object: 7 payload bytes + NUL
		t.Fatalf("SafeStrcpy copied %d bytes, want 7", n)
	}
	got, _ := ReadString(m, dst, 8)
	if got != strings.Repeat("B", 7) {
		t.Fatalf("truncated copy = %q", got)
	}
	// Nothing beyond the object was touched.
	b, _ := m.Load8(dst + 8)
	if b == 'B' {
		t.Fatal("SafeStrcpy wrote past the object end")
	}
}

func TestSafeStrcpyInteriorPointer(t *testing.T) {
	// §4.4: available space is measured from the destination pointer to
	// the end of the object, so interior destinations get less room.
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(64)
	dst, _ := h.Malloc(32)
	if err := WriteString(m, src, strings.Repeat("C", 60)); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrcpy(h, m, dst+30, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // 2 bytes remain: 1 payload + NUL
		t.Fatalf("interior SafeStrcpy copied %d, want 1", n)
	}
}

func TestSafeStrcpyFitsWithoutTruncation(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(64)
	dst, _ := h.Malloc(64)
	if err := WriteString(m, src, "short"); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrcpy(h, m, dst, src)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, _ := ReadString(m, dst, 64)
	if got != "short" {
		t.Fatalf("got %q", got)
	}
}

func TestStrncpyExactAndPadding(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(32)
	dst, _ := h.Malloc(32)
	if err := WriteString(m, src, "abc"); err != nil {
		t.Fatal(err)
	}
	// Pre-fill destination to observe zero padding.
	if err := m.Memset(dst, 0xFF, 16); err != nil {
		t.Fatal(err)
	}
	if err := Strncpy(m, dst, src, 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := m.ReadBytes(dst, buf); err != nil {
		t.Fatal(err)
	}
	want := []byte{'a', 'b', 'c', 0, 0, 0, 0, 0, 0, 0}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, buf[i], want[i])
		}
	}
}

func TestSafeStrncpyCapsWrongLength(t *testing.T) {
	// The programmer passes a "checked" length that is still too large;
	// DieHard's replacement caps it at the object's real capacity.
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(128)
	dst, _ := h.Malloc(16)
	if err := WriteString(m, src, strings.Repeat("D", 100)); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrncpy(h, m, dst, src, 100) // wrong: dst holds 16
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("SafeStrncpy copied %d, want 15", n)
	}
	b, _ := m.Load8(dst + 16)
	if b == 'D' {
		t.Fatal("SafeStrncpy overflowed despite capping")
	}
}

func TestSafeStrncpyHonorsSmallerN(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(64)
	dst, _ := h.Malloc(64)
	if err := WriteString(m, src, "abcdefgh"); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrncpy(h, m, dst, src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 3 payload + NUL within n=4
		t.Fatalf("copied %d, want 3", n)
	}
}

func TestStrcmp(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	a, _ := h.Malloc(32)
	b, _ := h.Malloc(32)
	cases := []struct {
		s1, s2 string
		want   int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1},
		{"abc", "ab", 1},
		{"", "", 0},
	}
	for _, c := range cases {
		if err := WriteString(m, a, c.s1); err != nil {
			t.Fatal(err)
		}
		if err := WriteString(m, b, c.s2); err != nil {
			t.Fatal(err)
		}
		got, err := Strcmp(m, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("Strcmp(%q,%q) = %d, want %d", c.s1, c.s2, got, c.want)
		}
	}
}

func TestMemcpy(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(256)
	dst, _ := h.Malloc(256)
	payload := []byte(strings.Repeat("xyz!", 50))
	if err := m.WriteBytes(src, payload); err != nil {
		t.Fatal(err)
	}
	if err := Memcpy(m, dst, src, len(payload)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := m.ReadBytes(dst, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("Memcpy mismatch")
	}
}

func TestStrlenFaultsOffHeap(t *testing.T) {
	h := newHeap(t)
	if _, err := Strlen(h.Mem(), 0xdeadbeef); err == nil {
		t.Fatal("Strlen of wild pointer should fault")
	}
}

func TestSafeStrcpyFreedDestinationFallsBack(t *testing.T) {
	// A freed destination no longer resolves to an object; the real
	// interposed strcpy cannot check it and copies unchecked. Verify we
	// do not fault inside the heap (writes land on free space).
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(64)
	dst, _ := h.Malloc(16)
	if err := WriteString(m, src, "dangling!"); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := SafeStrcpy(h, m, dst, src); err != nil {
		t.Fatalf("copy to freed slot faulted: %v", err)
	}
}

func TestStrcatAndSafeStrcat(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	dst, _ := h.Malloc(32)
	src, _ := h.Malloc(32)
	if err := WriteString(m, dst, "die"); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(m, src, "hard"); err != nil {
		t.Fatal(err)
	}
	if err := Strcat(m, dst, src); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadString(m, dst, 32)
	if got != "diehard" {
		t.Fatalf("strcat got %q", got)
	}
	// Unchecked strcat overflows a full destination; the checked
	// replacement truncates at the object end.
	small, _ := h.Malloc(8)
	if err := WriteString(m, small, "1234"); err != nil {
		t.Fatal(err)
	}
	long, _ := h.Malloc(64)
	if err := WriteString(m, long, strings.Repeat("X", 50)); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrcat(h, m, small, long)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 8-byte object: "1234" + 3 payload + NUL
		t.Fatalf("SafeStrcat appended %d, want 3", n)
	}
	got, _ = ReadString(m, small, 8)
	if got != "1234XXX" {
		t.Fatalf("SafeStrcat result %q", got)
	}
	if b, _ := m.Load8(small + 8); b == 'X' {
		t.Fatal("SafeStrcat wrote past the object")
	}
}

func TestStrncatAndSafeStrncat(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	dst, _ := h.Malloc(32)
	src, _ := h.Malloc(32)
	if err := WriteString(m, dst, "ab"); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(m, src, "cdefgh"); err != nil {
		t.Fatal(err)
	}
	if err := Strncat(m, dst, src, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadString(m, dst, 32)
	if got != "abcde" {
		t.Fatalf("strncat got %q", got)
	}
	// Checked: a wrong n is capped at the real capacity.
	small, _ := h.Malloc(8)
	if err := WriteString(m, small, "12"); err != nil {
		t.Fatal(err)
	}
	n, err := SafeStrncat(h, m, small, src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 { // "12" + 5 payload + NUL fills the 8-byte object
		t.Fatalf("SafeStrncat appended %d, want 5", n)
	}
	if b, _ := m.Load8(small + 8); b == 'c' || b == 'd' {
		t.Fatal("SafeStrncat overflowed")
	}
}

func TestStrdup(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	src, _ := h.Malloc(32)
	if err := WriteString(m, src, "duplicate me"); err != nil {
		t.Fatal(err)
	}
	dup, err := Strdup(h, m, src)
	if err != nil {
		t.Fatal(err)
	}
	if dup == src {
		t.Fatal("strdup returned the original")
	}
	got, _ := ReadString(m, dup, 32)
	if got != "duplicate me" {
		t.Fatalf("strdup got %q", got)
	}
	// The copy is independent.
	if err := m.Store8(src, 'X'); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadString(m, dup, 32)
	if got != "duplicate me" {
		t.Fatal("strdup copy aliases the original")
	}
}

func TestMemcmp(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	a, _ := h.Malloc(16)
	b, _ := h.Malloc(16)
	if err := m.WriteBytes(a, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(b, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if v, err := Memcmp(m, a, b, 8); err != nil || v != 0 {
		t.Fatalf("equal memcmp: %d %v", v, err)
	}
	if err := m.Store8(b+4, 'z'); err != nil {
		t.Fatal(err)
	}
	if v, _ := Memcmp(m, a, b, 8); v != -1 {
		t.Fatalf("a<b memcmp: %d", v)
	}
	if v, _ := Memcmp(m, b, a, 8); v != 1 {
		t.Fatalf("b>a memcmp: %d", v)
	}
	if v, _ := Memcmp(m, a, b, 4); v != 0 {
		t.Fatalf("prefix memcmp: %d", v)
	}
}

func TestStrchr(t *testing.T) {
	h := newHeap(t)
	m := h.Mem()
	s, _ := h.Malloc(32)
	if err := WriteString(m, s, "find the needle"); err != nil {
		t.Fatal(err)
	}
	p, err := Strchr(m, s, 'n')
	if err != nil {
		t.Fatal(err)
	}
	if p != s+2 { // "fi[n]d"
		t.Fatalf("Strchr at offset %d", p-s)
	}
	p, err = Strchr(m, s, 'q')
	if err != nil || p != 0 {
		t.Fatalf("absent char: %v %v", p, err)
	}
	// Searching for NUL finds the terminator, like C.
	p, err = Strchr(m, s, 0)
	if err != nil || p != s+15 {
		t.Fatalf("terminator search: offset %d, %v", p-s, err)
	}
}
