// Package libc provides C string and memory functions operating on
// simulated memory, together with DieHard's checked replacements for the
// unsafe ones (§4.4 of the paper).
//
// The plain functions have exactly the hazards of their C counterparts:
// Strcpy copies until the NUL terminator regardless of the destination's
// capacity, so a too-small destination buffer is really overflowed. The
// Safe variants consult the allocator for the destination object's bounds
// and never write past the end of the object, which is how DieHard
// defuses both strcpy and the "checked but wrong length" strncpy calls
// the paper describes.
//
// On memories whose bulk operations are page-granular (*vmem.Space,
// marked by PageGranularBulk), scans and copies run through the bulk
// fast paths of heap.Memory (FindByte, ReadBytes, MemMove) rather than
// one Load8 interface call per byte. Chunks never extend past the page
// containing the bytes a byte-by-byte loop would have examined, so a
// scan faults on exactly the pages its C counterpart would fault on.
// The copying functions do reorder work: they scan src for the
// terminator before writing dst, so with a pathological unterminated
// source AND an unwritable destination the surfaced fault can be the
// src load fault where an interleaved C loop would have hit the dst
// store fault first, and overlapping copies behave like memmove rather
// than reproducing the interleaved loop's clobber pattern (both are
// undefined behavior in C). On memories that interpose finer-grained
// semantics — the fail-stop and failure-oblivious policy runtimes,
// whose per-access object-granular checks are the behavior under
// study — the functions keep their byte-at-a-time loops, preserving
// those semantics exactly.
package libc

import (
	"diehard/internal/heap"
	"diehard/internal/vmem"
)

// Bounds is the allocator capability the checked functions need: the
// ability to resolve any heap pointer (including interior pointers) to
// its containing object. The DieHard heap implements it using its
// power-of-two layout; other allocators may implement it too.
type Bounds interface {
	// ObjectBounds resolves p to the allocated object containing it.
	ObjectBounds(p heap.Ptr) (start heap.Ptr, size int, ok bool)
	// InHeap reports whether p points into the managed heap.
	InHeap(p heap.Ptr) bool
}

// maxScan bounds string scans so that a missing NUL terminator in a
// pathological setup cannot loop forever; 1<<30 is far beyond any object
// in the simulation, so the bound is never the behaviour under test
// (the scan faults on a guard or unmapped page first).
const maxScan = 1 << 30

// pageGranular reports whether m's bulk operations are page-granular,
// making the chunked fast paths observation-equivalent to byte loops.
func pageGranular(m heap.Memory) bool {
	_, ok := m.(interface{ PageGranularBulk() })
	return ok
}

// pageRem returns the number of bytes from addr to the end of its page:
// the largest chunk that cannot touch a page a byte-at-a-time loop
// starting at addr would not also touch.
func pageRem(addr uint64) int {
	return vmem.PageSize - int(addr&(vmem.PageSize-1))
}

// Strlen returns the length of the NUL-terminated string at s. Reading
// past the end of mapped memory faults, exactly like C.
func Strlen(m heap.Memory, s heap.Ptr) (int, error) {
	n, found, err := m.FindByte(s, 0, maxScan)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, &heap.CorruptionError{Detail: "libc: unterminated string scan"}
	}
	return n, nil
}

// Strcpy copies the NUL-terminated string at src to dst, terminator
// included. It performs no bounds checking whatsoever: this is the
// unsafe C strcpy, and it will happily overflow dst. On page-granular
// memories the source is measured before the destination is written
// (see the package comment for the fault-ordering consequence).
func Strcpy(m heap.Memory, dst, src heap.Ptr) error {
	if pageGranular(m) {
		n, err := Strlen(m, src)
		if err != nil {
			return err
		}
		return m.MemMove(dst, src, n+1)
	}
	for i := uint64(0); ; i++ {
		b, err := m.Load8(src + i)
		if err != nil {
			return err
		}
		if err := m.Store8(dst+i, b); err != nil {
			return err
		}
		if b == 0 {
			return nil
		}
	}
}

// Strncpy copies at most n bytes from src to dst, zero-padding to n if
// src is shorter, like C strncpy. A wrong n still overflows dst: the
// paper's point is that "checked" functions are only as safe as the
// length the programmer passed.
func Strncpy(m heap.Memory, dst, src heap.Ptr, n int) error {
	if n <= 0 {
		return nil
	}
	if pageGranular(m) {
		idx, found, err := m.FindByte(src, 0, n)
		if err != nil {
			return err
		}
		payload := n
		if found {
			payload = idx + 1 // include the terminator
		}
		if err := m.MemMove(dst, src, payload); err != nil {
			return err
		}
		if payload < n {
			return m.Memset(dst+uint64(payload), 0, n-payload)
		}
		return nil
	}
	i := 0
	for ; i < n; i++ {
		b, err := m.Load8(src + uint64(i))
		if err != nil {
			return err
		}
		if err := m.Store8(dst+uint64(i), b); err != nil {
			return err
		}
		if b == 0 {
			i++
			break
		}
	}
	for ; i < n; i++ {
		if err := m.Store8(dst+uint64(i), 0); err != nil {
			return err
		}
	}
	return nil
}

// Strcmp compares two NUL-terminated strings like C strcmp.
func Strcmp(m heap.Memory, a, b heap.Ptr) (int, error) {
	if pageGranular(m) {
		var ba, bb [vmem.PageSize]byte
		for off := 0; off < maxScan; {
			chunk := pageRem(a + uint64(off))
			if r := pageRem(b + uint64(off)); r < chunk {
				chunk = r
			}
			if err := m.ReadBytes(a+uint64(off), ba[:chunk]); err != nil {
				return 0, err
			}
			if err := m.ReadBytes(b+uint64(off), bb[:chunk]); err != nil {
				return 0, err
			}
			for i := 0; i < chunk; i++ {
				ca, cb := ba[i], bb[i]
				if ca != cb {
					if ca < cb {
						return -1, nil
					}
					return 1, nil
				}
				if ca == 0 {
					return 0, nil
				}
			}
			off += chunk
		}
		return 0, &heap.CorruptionError{Detail: "libc: unterminated string compare"}
	}
	for i := uint64(0); i < maxScan; i++ {
		ca, err := m.Load8(a + i)
		if err != nil {
			return 0, err
		}
		cb, err := m.Load8(b + i)
		if err != nil {
			return 0, err
		}
		if ca != cb {
			if ca < cb {
				return -1, nil
			}
			return 1, nil
		}
		if ca == 0 {
			return 0, nil
		}
	}
	return 0, &heap.CorruptionError{Detail: "libc: unterminated string compare"}
}

// Memcpy copies n bytes from src to dst. Like C memcpy it is documented
// for non-overlapping buffers only; the simulated copy runs through
// MemMove, so overlapping arguments behave like memmove rather than
// corrupting.
func Memcpy(m heap.Memory, dst, src heap.Ptr, n int) error {
	if n <= 0 {
		return nil
	}
	return m.MemMove(dst, src, n)
}

// availableSpace returns how many bytes may be written at dst without
// leaving the containing object, following §4.4: find the object start,
// then size minus offset. ok is false when dst is not in the heap or not
// within a live object.
func availableSpace(b Bounds, dst heap.Ptr) (int, bool) {
	if !b.InHeap(dst) {
		return 0, false
	}
	start, size, ok := b.ObjectBounds(dst)
	if !ok {
		return 0, false
	}
	return size - int(dst-start), true
}

// SafeStrcpy is DieHard's replacement for strcpy: the copy length is
// capped at the space remaining in the destination object, so a heap
// buffer overflow through this function is impossible. The result is
// truncated (and the truncated copy is still NUL-terminated) when src
// does not fit; the number of payload bytes copied is returned.
// Destinations outside the managed heap fall back to the unchecked copy,
// as the real interposed function must.
func SafeStrcpy(b Bounds, m heap.Memory, dst, src heap.Ptr) (int, error) {
	avail, ok := availableSpace(b, dst)
	if !ok {
		if err := Strcpy(m, dst, src); err != nil {
			return 0, err
		}
		n, err := Strlen(m, dst)
		return n, err
	}
	return boundedCopy(m, dst, src, avail)
}

// SafeStrncpy is DieHard's replacement for strncpy: the programmer's
// length argument is honored only up to the destination object's actual
// capacity, defusing incorrect length arguments (§4.4).
func SafeStrncpy(b Bounds, m heap.Memory, dst, src heap.Ptr, n int) (int, error) {
	avail, ok := availableSpace(b, dst)
	if !ok {
		if err := Strncpy(m, dst, src, n); err != nil {
			return 0, err
		}
		return n, nil
	}
	if n < avail {
		avail = n
	}
	return boundedCopy(m, dst, src, avail)
}

// boundedCopy copies src into dst, writing at most avail bytes including
// the terminator, and reports the number of payload bytes written.
func boundedCopy(m heap.Memory, dst, src heap.Ptr, avail int) (int, error) {
	if avail <= 0 {
		return 0, nil
	}
	if pageGranular(m) {
		idx, found, err := m.FindByte(src, 0, avail-1)
		if err != nil {
			return 0, err
		}
		payload := avail - 1
		if found {
			payload = idx
		}
		if err := m.MemMove(dst, src, payload); err != nil {
			return 0, err
		}
		return payload, m.Store8(dst+uint64(payload), 0)
	}
	i := 0
	for ; i < avail-1; i++ {
		b, err := m.Load8(src + uint64(i))
		if err != nil {
			return i, err
		}
		if b == 0 {
			break
		}
		if err := m.Store8(dst+uint64(i), b); err != nil {
			return i, err
		}
	}
	return i, m.Store8(dst+uint64(i), 0)
}

// WriteString stores a Go string into simulated memory with a NUL
// terminator. It is a test and workload convenience, not a C function.
func WriteString(m heap.Memory, dst heap.Ptr, s string) error {
	if err := m.WriteBytes(dst, []byte(s)); err != nil {
		return err
	}
	return m.Store8(dst+uint64(len(s)), 0)
}

// ReadString reads the NUL-terminated string at src into a Go string,
// failing if it exceeds maxLen bytes.
func ReadString(m heap.Memory, src heap.Ptr, maxLen int) (string, error) {
	if pageGranular(m) {
		n, found, err := m.FindByte(src, 0, maxLen)
		if err != nil {
			return "", err
		}
		if !found {
			return "", &heap.CorruptionError{Detail: "libc: string exceeds maximum length"}
		}
		out := make([]byte, n)
		if err := m.ReadBytes(src, out); err != nil {
			return "", err
		}
		return string(out), nil
	}
	out := make([]byte, 0, 32)
	for i := 0; i < maxLen; i++ {
		b, err := m.Load8(src + uint64(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, b)
	}
	return "", &heap.CorruptionError{Detail: "libc: string exceeds maximum length"}
}

// Strcat appends the NUL-terminated string at src to the one at dst,
// like C strcat: no bounds checking, so a too-small destination is
// really overflowed.
func Strcat(m heap.Memory, dst, src heap.Ptr) error {
	n, err := Strlen(m, dst)
	if err != nil {
		return err
	}
	return Strcpy(m, dst+uint64(n), src)
}

// Strncat appends at most n bytes of src to dst, always terminating,
// like C strncat — which still overflows when n was computed from the
// wrong buffer.
func Strncat(m heap.Memory, dst, src heap.Ptr, n int) error {
	dlen, err := Strlen(m, dst)
	if err != nil {
		return err
	}
	if pageGranular(m) {
		payload := 0
		if n > 0 {
			idx, found, err := m.FindByte(src, 0, n)
			if err != nil {
				return err
			}
			payload = n
			if found {
				payload = idx
			}
			if err := m.MemMove(dst+uint64(dlen), src, payload); err != nil {
				return err
			}
		}
		return m.Store8(dst+uint64(dlen+payload), 0)
	}
	i := 0
	for ; i < n; i++ {
		b, err := m.Load8(src + uint64(i))
		if err != nil {
			return err
		}
		if b == 0 {
			break
		}
		if err := m.Store8(dst+uint64(dlen+i), b); err != nil {
			return err
		}
	}
	return m.Store8(dst+uint64(dlen+i), 0)
}

// SafeStrcat is DieHard's checked replacement for strcat (§4.4): the
// append is capped at the destination object's remaining capacity,
// counted from the current terminator. It returns the number of payload
// bytes appended.
func SafeStrcat(b Bounds, m heap.Memory, dst, src heap.Ptr) (int, error) {
	n, err := Strlen(m, dst)
	if err != nil {
		return 0, err
	}
	end := dst + uint64(n)
	avail, ok := availableSpace(b, end)
	if !ok {
		if err := Strcat(m, dst, src); err != nil {
			return 0, err
		}
		slen, err := Strlen(m, src)
		return slen, err
	}
	return boundedCopy(m, end, src, avail)
}

// SafeStrncat is DieHard's checked replacement for strncat: the
// programmer's n is honored only up to the destination's real remaining
// capacity.
func SafeStrncat(b Bounds, m heap.Memory, dst, src heap.Ptr, n int) (int, error) {
	dlen, err := Strlen(m, dst)
	if err != nil {
		return 0, err
	}
	end := dst + uint64(dlen)
	avail, ok := availableSpace(b, end)
	if !ok {
		if err := Strncat(m, dst, src, n); err != nil {
			return 0, err
		}
		return n, nil
	}
	if n+1 < avail {
		avail = n + 1
	}
	return boundedCopy(m, end, src, avail)
}

// Strdup allocates a copy of the NUL-terminated string at src, like C
// strdup.
func Strdup(a heap.Allocator, m heap.Memory, src heap.Ptr) (heap.Ptr, error) {
	n, err := Strlen(m, src)
	if err != nil {
		return heap.Null, err
	}
	dst, err := a.Malloc(n + 1)
	if err != nil {
		return heap.Null, err
	}
	if err := Memcpy(m, dst, src, n); err != nil {
		return heap.Null, err
	}
	return dst, m.Store8(dst+uint64(n), 0)
}

// Memcmp compares n bytes like C memcmp.
func Memcmp(m heap.Memory, a, b heap.Ptr, n int) (int, error) {
	if pageGranular(m) {
		var ba, bb [vmem.PageSize]byte
		for off := 0; off < n; {
			chunk := pageRem(a + uint64(off))
			if r := pageRem(b + uint64(off)); r < chunk {
				chunk = r
			}
			if chunk > n-off {
				chunk = n - off
			}
			if err := m.ReadBytes(a+uint64(off), ba[:chunk]); err != nil {
				return 0, err
			}
			if err := m.ReadBytes(b+uint64(off), bb[:chunk]); err != nil {
				return 0, err
			}
			for i := 0; i < chunk; i++ {
				if ba[i] != bb[i] {
					if ba[i] < bb[i] {
						return -1, nil
					}
					return 1, nil
				}
			}
			off += chunk
		}
		return 0, nil
	}
	for i := uint64(0); i < uint64(n); i++ {
		ca, err := m.Load8(a + i)
		if err != nil {
			return 0, err
		}
		cb, err := m.Load8(b + i)
		if err != nil {
			return 0, err
		}
		if ca != cb {
			if ca < cb {
				return -1, nil
			}
			return 1, nil
		}
	}
	return 0, nil
}

// Strchr returns the address of the first occurrence of c in the
// NUL-terminated string at s, or Null if absent, like C strchr. As in C,
// looking for c == 0 finds the terminator.
func Strchr(m heap.Memory, s heap.Ptr, c byte) (heap.Ptr, error) {
	if pageGranular(m) {
		for off := 0; off < maxScan; {
			chunk := pageRem(s + uint64(off))
			if chunk > maxScan-off {
				chunk = maxScan - off
			}
			ci, cFound, err := m.FindByte(s+uint64(off), c, chunk)
			if err != nil {
				return heap.Null, err
			}
			zi, zFound, err := m.FindByte(s+uint64(off), 0, chunk)
			if err != nil {
				return heap.Null, err
			}
			// A byte-at-a-time loop tests b == c before b == 0, so when
			// both land on the same index (c == 0) the match wins.
			if cFound && (!zFound || ci <= zi) {
				return s + uint64(off+ci), nil
			}
			if zFound {
				return heap.Null, nil
			}
			off += chunk
		}
		return heap.Null, &heap.CorruptionError{Detail: "libc: unterminated string scan"}
	}
	for i := uint64(0); i < maxScan; i++ {
		b, err := m.Load8(s + i)
		if err != nil {
			return heap.Null, err
		}
		if b == c {
			return s + i, nil
		}
		if b == 0 {
			return heap.Null, nil
		}
	}
	return heap.Null, &heap.CorruptionError{Detail: "libc: unterminated string scan"}
}
