// Package vmem simulates a virtual address space: paged memory with
// protection bits, mmap/munmap-style mapping, guard pages, and protection
// faults.
//
// This package is the substitution that makes a DieHard reproduction
// possible in a garbage-collected language (see DESIGN.md §1). Every
// allocator in this repository hands out addresses inside a Space, and
// every evaluation workload reads and writes through those addresses. A
// buffer overflow therefore really overwrites neighboring bytes, a read of
// an unmapped or guarded page really faults, and "the program crashed" has
// a concrete, testable meaning: an access returned a *Fault.
//
// The Space also models two performance-relevant mechanisms the paper
// discusses: lazy page instantiation (reserved but untouched DieHard
// partitions consume no memory, §4.5) and a small TLB (the source of the
// 300.twolf outlier in Figure 5(a), §7.2.1). Mappings are recorded as
// extents; per-page backing store is created only on first access, so a
// 384 MB DieHard heap costs what its touched pages cost.
package vmem

import (
	"fmt"
	"sort"
)

// PageSize is the size of a simulated page in bytes, matching the x86
// systems of the paper's evaluation.
const PageSize = 4096

// Prot describes the access permissions of a mapped page.
type Prot uint8

const (
	// ProtNone maps a page that faults on any access; used for guard pages.
	ProtNone Prot = 0
	// ProtRead permits loads.
	ProtRead Prot = 1 << 0
	// ProtWrite permits stores.
	ProtWrite Prot = 1 << 1
	// ProtRW permits loads and stores.
	ProtRW Prot = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// AccessKind distinguishes the operation that caused a fault.
type AccessKind uint8

const (
	// AccessLoad is a read access.
	AccessLoad AccessKind = iota
	// AccessStore is a write access.
	AccessStore
	// AccessFree is an unmap or protection change on an invalid range.
	AccessFree
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessFree:
		return "free"
	}
	return "access"
}

// Fault is the simulated equivalent of SIGSEGV: an access touched an
// unmapped page or violated page protections. Workloads treat any returned
// *Fault as a crash of the simulated process.
type Fault struct {
	Addr   uint64
	Kind   AccessKind
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("segmentation fault: %s at %#x (%s)", f.Kind, f.Addr, f.Reason)
}

// Stats counts memory-system events. Loads and Stores count accesses
// (word-granularity for bulk operations); TLB counters are only meaningful
// when the TLB is enabled.
type Stats struct {
	Loads       uint64
	Stores      uint64
	TLBHits     uint64
	TLBMisses   uint64 // first-level misses
	TLB2Misses  uint64 // misses in both levels (cold page walks)
	PagesMapped uint64 // currently mapped pages
	PagesPeak   uint64 // high-water mark of mapped pages
	PagesDirty  uint64 // pages whose backing store was instantiated
	Faults      uint64
}

// Accesses returns the total number of loads and stores.
func (s *Stats) Accesses() uint64 { return s.Loads + s.Stores }

type page struct {
	data []byte
	prot Prot
}

// extent is a mapped address range [start, end), page-aligned, with
// uniform protection. Backing pages are instantiated lazily.
type extent struct {
	start, end uint64
	prot       Prot
}

// tlbSize is the number of entries in the simulated first-level TLB,
// matching a Pentium-4-era data TLB. tlb2Size models the page-walk
// caching of the memory hierarchy: a much larger second level whose
// hits make repeated misses over a warm working set far cheaper than
// cold page walks.
const (
	tlbSize  = 64
	tlb2Size = 1024
)

// Space is a simulated virtual address space. It is not safe for
// concurrent use; each simulated process (replica) owns its own Space.
type Space struct {
	extents []extent // sorted by start, non-overlapping
	pages   map[uint64]*page
	next    uint64 // next free virtual address for Map
	stats   Stats
	filler  func([]byte) // optional initializer for fresh page contents

	// One-entry translation cache for Go-level speed (not a modeled
	// structure; invisible in Stats).
	lastPageNum uint64
	lastPage    *page

	// Simulated TLB: FIFO-replacement, fully associative, two levels.
	tlbEnabled bool
	tlbSet     map[uint64]struct{}
	tlbRing    [tlbSize]uint64
	tlbHand    int
	tlbLive    int
	tlb2Set    map[uint64]struct{}
	tlb2Ring   [tlb2Size]uint64
	tlb2Hand   int
	tlb2Live   int
}

// NewSpace returns an empty address space. Address 0 is never mapped, so 0
// serves as the null pointer. The simulated TLB starts disabled; call
// EnableTLB for experiments that model translation costs.
func NewSpace() *Space {
	return &Space{
		pages: make(map[uint64]*page),
		next:  0x10000, // leave a generous null guard region
	}
}

// EnableTLB turns on TLB simulation. Subsequent accesses count hits and
// misses against a 64-entry FIFO TLB.
func (s *Space) EnableTLB() {
	if s.tlbEnabled {
		return
	}
	s.tlbEnabled = true
	s.tlbSet = make(map[uint64]struct{}, tlbSize)
	s.tlb2Set = make(map[uint64]struct{}, tlb2Size)
}

// SetPageFiller installs a function invoked on each fresh page's backing
// store before first use. DieHard's replicated mode uses this to realize
// §4.1's "fill the heap with random values" lazily: every page a replica
// ever observes is pre-filled from that replica's private random stream.
// A nil filler restores zero-fill.
func (s *Space) SetPageFiller(fill func([]byte)) { s.filler = fill }

// Stats returns a pointer to the space's counters. The counters are
// updated in place by every access.
func (s *Space) Stats() *Stats { return &s.stats }

// Map reserves n bytes (rounded up to whole pages) with the given
// protection and returns the base address. The pages are lazily
// instantiated: untouched pages consume no backing memory, mirroring the
// paper's note that DieHard's reserved-but-unused partitions cost nothing.
// A one-page unmapped hole is left after every mapping so distinct
// mappings are never adjacent.
func (s *Space) Map(n int, prot Prot) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vmem: Map size %d must be positive", n)
	}
	npages := uint64((n + PageSize - 1) / PageSize)
	base := s.next
	s.extents = append(s.extents, extent{start: base, end: base + npages*PageSize, prot: prot})
	s.next = base + (npages+1)*PageSize // +1: unmapped hole
	s.stats.PagesMapped += npages
	if s.stats.PagesMapped > s.stats.PagesPeak {
		s.stats.PagesPeak = s.stats.PagesMapped
	}
	return base, nil
}

// MapGuarded reserves n bytes of read-write memory with a no-access guard
// page immediately before and after, as DieHard places around large
// objects and its heap regions. It returns the address of the usable
// region.
func (s *Space) MapGuarded(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vmem: MapGuarded size %d must be positive", n)
	}
	npages := (n + PageSize - 1) / PageSize
	base, err := s.Map((npages+2)*PageSize, ProtRW)
	if err != nil {
		return 0, err
	}
	if err := s.Protect(base, PageSize, ProtNone); err != nil {
		return 0, err
	}
	if err := s.Protect(base+uint64(npages+1)*PageSize, PageSize, ProtNone); err != nil {
		return 0, err
	}
	return base + PageSize, nil
}

// findExtent returns the index of the extent containing addr, or -1.
func (s *Space) findExtent(addr uint64) int {
	i := sort.Search(len(s.extents), func(i int) bool { return s.extents[i].end > addr })
	if i < len(s.extents) && s.extents[i].start <= addr {
		return i
	}
	return -1
}

// carve splits extents so that [addr, addr+bytes) is covered exactly by a
// run of whole extents, returning the index range [lo, hi) of that run.
// It fails if any page in the range is unmapped.
func (s *Space) carve(addr, bytes uint64) (lo, hi int, err error) {
	end := addr + bytes
	// Verify full coverage first so failures have no side effects.
	at := addr
	for at < end {
		i := s.findExtent(at)
		if i < 0 {
			return 0, 0, &Fault{Addr: at, Kind: AccessFree, Reason: "operation on unmapped page"}
		}
		at = s.extents[i].end
	}
	lo = s.findExtent(addr)
	if s.extents[lo].start < addr {
		e := s.extents[lo]
		s.extents = append(s.extents, extent{})
		copy(s.extents[lo+1:], s.extents[lo:])
		s.extents[lo] = extent{start: e.start, end: addr, prot: e.prot}
		s.extents[lo+1].start = addr
		lo++
	}
	hi = s.findExtent(end - 1)
	if s.extents[hi].end > end {
		e := s.extents[hi]
		s.extents = append(s.extents, extent{})
		copy(s.extents[hi+1:], s.extents[hi:])
		s.extents[hi] = extent{start: e.start, end: end, prot: e.prot}
		s.extents[hi+1].start = end
	}
	return lo, hi + 1, nil
}

// Unmap removes the mapping for [addr, addr+n). addr must be page-aligned
// and the whole range must be mapped; otherwise a *Fault is returned and
// nothing is unmapped.
func (s *Space) Unmap(addr uint64, n int) error {
	if addr%PageSize != 0 || n <= 0 {
		return &Fault{Addr: addr, Kind: AccessFree, Reason: "unaligned or empty unmap"}
	}
	bytes := uint64((n+PageSize-1)/PageSize) * PageSize
	lo, hi, err := s.carve(addr, bytes)
	if err != nil {
		s.stats.Faults++
		return err
	}
	s.extents = append(s.extents[:lo], s.extents[hi:]...)
	for pn := addr / PageSize; pn < (addr+bytes)/PageSize; pn++ {
		if _, ok := s.pages[pn]; ok {
			delete(s.pages, pn)
			s.stats.PagesDirty--
		}
	}
	s.stats.PagesMapped -= bytes / PageSize
	s.lastPage = nil
	return nil
}

// Protect changes the protection of the page-aligned range [addr, addr+n).
func (s *Space) Protect(addr uint64, n int, prot Prot) error {
	if addr%PageSize != 0 || n <= 0 {
		return &Fault{Addr: addr, Kind: AccessFree, Reason: "unaligned or empty protect"}
	}
	bytes := uint64((n+PageSize-1)/PageSize) * PageSize
	lo, hi, err := s.carve(addr, bytes)
	if err != nil {
		s.stats.Faults++
		return err
	}
	for i := lo; i < hi; i++ {
		s.extents[i].prot = prot
	}
	for pn := addr / PageSize; pn < (addr+bytes)/PageSize; pn++ {
		if pg, ok := s.pages[pn]; ok {
			pg.prot = prot
		}
	}
	s.lastPage = nil
	return nil
}

// Mapped reports whether addr lies within a mapped page (of any
// protection).
func (s *Space) Mapped(addr uint64) bool {
	return s.findExtent(addr) >= 0
}

// translate resolves an access, applying protection checks, TLB
// accounting, and lazy instantiation. It returns the page and the offset
// within it.
func (s *Space) translate(addr uint64, kind AccessKind) (*page, uint64, error) {
	pn := addr / PageSize
	var pg *page
	if s.lastPage != nil && s.lastPageNum == pn {
		pg = s.lastPage
	} else {
		var ok bool
		pg, ok = s.pages[pn]
		if !ok {
			i := s.findExtent(addr)
			if i < 0 {
				s.stats.Faults++
				return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: "unmapped address"}
			}
			pg = &page{prot: s.extents[i].prot}
			s.pages[pn] = pg
		}
		s.lastPageNum, s.lastPage = pn, pg
	}
	need := ProtRead
	if kind == AccessStore {
		need = ProtWrite
	}
	if pg.prot&need == 0 {
		s.stats.Faults++
		reason := "protection violation"
		if pg.prot == ProtNone {
			reason = "guard page"
		}
		return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: reason}
	}
	if s.tlbEnabled {
		s.tlbTouch(pn)
	}
	if pg.data == nil {
		pg.data = make([]byte, PageSize)
		if s.filler != nil {
			s.filler(pg.data)
		}
		s.stats.PagesDirty++
	}
	return pg, addr % PageSize, nil
}

func (s *Space) tlbTouch(pn uint64) {
	if _, ok := s.tlbSet[pn]; ok {
		s.stats.TLBHits++
		return
	}
	s.stats.TLBMisses++
	if s.tlbLive == tlbSize {
		delete(s.tlbSet, s.tlbRing[s.tlbHand])
	} else {
		s.tlbLive++
	}
	s.tlbRing[s.tlbHand] = pn
	s.tlbSet[pn] = struct{}{}
	s.tlbHand = (s.tlbHand + 1) % tlbSize
	// Second level: a warm translation costs a short refill; a miss in
	// both levels is a cold page walk.
	if _, ok := s.tlb2Set[pn]; ok {
		return
	}
	s.stats.TLB2Misses++
	if s.tlb2Live == tlb2Size {
		delete(s.tlb2Set, s.tlb2Ring[s.tlb2Hand])
	} else {
		s.tlb2Live++
	}
	s.tlb2Ring[s.tlb2Hand] = pn
	s.tlb2Set[pn] = struct{}{}
	s.tlb2Hand = (s.tlb2Hand + 1) % tlb2Size
}

// Load8 loads one byte.
func (s *Space) Load8(addr uint64) (byte, error) {
	pg, off, err := s.translate(addr, AccessLoad)
	if err != nil {
		return 0, err
	}
	s.stats.Loads++
	return pg.data[off], nil
}

// Store8 stores one byte.
func (s *Space) Store8(addr uint64, v byte) error {
	pg, off, err := s.translate(addr, AccessStore)
	if err != nil {
		return err
	}
	s.stats.Stores++
	pg.data[off] = v
	return nil
}

// Load32 loads a little-endian 32-bit value. The access may straddle a
// page boundary.
func (s *Space) Load32(addr uint64) (uint32, error) {
	if addr%PageSize <= PageSize-4 {
		pg, off, err := s.translate(addr, AccessLoad)
		if err != nil {
			return 0, err
		}
		s.stats.Loads++
		d := pg.data[off : off+4]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		b, err := s.Load8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Store32 stores a little-endian 32-bit value.
func (s *Space) Store32(addr uint64, v uint32) error {
	if addr%PageSize <= PageSize-4 {
		pg, off, err := s.translate(addr, AccessStore)
		if err != nil {
			return err
		}
		s.stats.Stores++
		d := pg.data[off : off+4]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return nil
	}
	for i := uint64(0); i < 4; i++ {
		if err := s.Store8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Load64 loads a little-endian 64-bit value.
func (s *Space) Load64(addr uint64) (uint64, error) {
	if addr%PageSize <= PageSize-8 {
		pg, off, err := s.translate(addr, AccessLoad)
		if err != nil {
			return 0, err
		}
		s.stats.Loads++
		d := pg.data[off : off+8]
		return uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 | uint64(d[3])<<24 |
			uint64(d[4])<<32 | uint64(d[5])<<40 | uint64(d[6])<<48 | uint64(d[7])<<56, nil
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		b, err := s.Load8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Store64 stores a little-endian 64-bit value.
func (s *Space) Store64(addr uint64, v uint64) error {
	if addr%PageSize <= PageSize-8 {
		pg, off, err := s.translate(addr, AccessStore)
		if err != nil {
			return err
		}
		s.stats.Stores++
		d := pg.data[off : off+8]
		d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		d[4], d[5], d[6], d[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
		return nil
	}
	for i := uint64(0); i < 8; i++ {
		if err := s.Store8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes fills b from the simulated memory starting at addr. Bulk
// operations count one access per 8 bytes, roughly modeling
// word-granularity copies.
func (s *Space) ReadBytes(addr uint64, b []byte) error {
	read := 0
	for read < len(b) {
		pg, off, err := s.translate(addr+uint64(read), AccessLoad)
		if err != nil {
			return err
		}
		n := copy(b[read:], pg.data[off:])
		s.stats.Loads += uint64(n+7) / 8
		read += n
	}
	return nil
}

// WriteBytes copies b into the simulated memory starting at addr.
func (s *Space) WriteBytes(addr uint64, b []byte) error {
	written := 0
	for written < len(b) {
		pg, off, err := s.translate(addr+uint64(written), AccessStore)
		if err != nil {
			return err
		}
		n := copy(pg.data[off:], b[written:])
		s.stats.Stores += uint64(n+7) / 8
		written += n
	}
	return nil
}

// Memset writes n copies of v starting at addr.
func (s *Space) Memset(addr uint64, v byte, n int) error {
	done := 0
	for done < n {
		pg, off, err := s.translate(addr+uint64(done), AccessStore)
		if err != nil {
			return err
		}
		chunk := len(pg.data) - int(off)
		if chunk > n-done {
			chunk = n - done
		}
		d := pg.data[off : int(off)+chunk]
		for i := range d {
			d[i] = v
		}
		s.stats.Stores += uint64(chunk+7) / 8
		done += chunk
	}
	return nil
}

// MemMove copies n bytes from src to dst within the space, handling
// overlap like C's memmove.
func (s *Space) MemMove(dst, src uint64, n int) error {
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n)
	if err := s.ReadBytes(src, buf); err != nil {
		return err
	}
	return s.WriteBytes(dst, buf)
}
