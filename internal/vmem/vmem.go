// Package vmem simulates a virtual address space: paged memory with
// protection bits, mmap/munmap-style mapping, guard pages, and protection
// faults.
//
// This package is the substitution that makes a DieHard reproduction
// possible in a garbage-collected language (see DESIGN.md §1). Every
// allocator in this repository hands out addresses inside a Space, and
// every evaluation workload reads and writes through those addresses. A
// buffer overflow therefore really overwrites neighboring bytes, a read of
// an unmapped or guarded page really faults, and "the program crashed" has
// a concrete, testable meaning: an access returned a *Fault.
//
// Translation is a two-level radix page table modeled on real MMU walks
// (DESIGN.md §2): a directory of fixed-size leaves of page-table entries,
// indexed by bit fields of the page number. The access hot path performs
// two array indexations and a protection mask test; no map lookups and no
// binary searches. Mapped ranges are additionally recorded as extents,
// which remain the bookkeeping source of truth for Map/Unmap/Protect
// argument validation, but extents are never consulted on the access path.
//
// Concurrency (DESIGN.md §7): the access path is lock-free. The
// directory, its leaves, and each page's backing frame are published
// through atomic pointers, and each PTE's protection word is an atomic
// — so goroutines may load and store through a Space concurrently with
// each other and with mapping operations. Map, Unmap, Protect, and
// first-touch page instantiation serialize on an internal mutex, exactly
// as a kernel serializes address-space mutation while leaving the TLB
// fill path unlocked. Per-access statistics default to unsynchronized
// counters (single-goroutine accessors, the experiment trials); spaces
// accessed from several goroutines opt into atomic or disabled counting
// via SetStatsMode.
//
// The Space also models two performance-relevant mechanisms the paper
// discusses: lazy page instantiation (reserved but untouched DieHard
// partitions consume no memory, §4.5) and a small TLB (the source of the
// 300.twolf outlier in Figure 5(a), §7.2.1). Page-table entries are
// populated at Map time, but per-page backing store is carved out of
// slab-allocated arenas only on first access, so a 384 MB DieHard heap
// costs what its touched pages cost. The TLB model hangs off an optional
// per-access accounting hook; runs that do not enable it pay nothing.
package vmem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"diehard/internal/obs"
)

// PageSize is the size of a simulated page in bytes, matching the x86
// systems of the paper's evaluation.
const PageSize = 4096

const (
	pageShift = 12
	offMask   = PageSize - 1

	// leafBits is the span of the second radix level: 512 entries per
	// leaf, so one leaf translates 2 MB of address space.
	leafBits  = 9
	leafSlots = 1 << leafBits
	leafMask  = leafSlots - 1

	// dirBits is the span of the first radix level. The directory is a
	// fixed array embedded in the Space — exactly a hardware table root —
	// so lock-free translation needs no directory-growth publication:
	// one bounds compare against a constant, then an atomic leaf load.
	// 2^15 leaves x 2 MB = 64 GB of simulated address space per Space.
	dirBits  = 15
	dirSlots = 1 << dirBits

	// maxAddr bounds Map: the highest simulated address + 1.
	maxAddr = uint64(dirSlots) << (leafBits + pageShift)

	// slabPages is the number of page frames carved from one backing
	// arena chunk (1 MB per chunk).
	slabPages = 256
)

// frame is a page's backing store. Frames are published into PTEs via
// atomic pointers, so a whole page becomes visible to lock-free readers
// in one store.
type frame = [PageSize]byte

// Prot describes the access permissions of a mapped page.
type Prot uint8

const (
	// ProtNone maps a page that faults on any access; used for guard pages.
	ProtNone Prot = 0
	// ProtRead permits loads.
	ProtRead Prot = 1 << 0
	// ProtWrite permits stores.
	ProtWrite Prot = 1 << 1
	// ProtRW permits loads and stores.
	ProtRW Prot = ProtRead | ProtWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// AccessKind distinguishes the operation that caused a fault.
type AccessKind uint8

const (
	// AccessLoad is a read access.
	AccessLoad AccessKind = iota
	// AccessStore is a write access.
	AccessStore
	// AccessFree is an unmap or protection change on an invalid range.
	AccessFree
)

func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessFree:
		return "free"
	}
	return "access"
}

// Fault is the simulated equivalent of SIGSEGV: an access touched an
// unmapped page or violated page protections. Workloads treat any returned
// *Fault as a crash of the simulated process.
type Fault struct {
	Addr   uint64
	Kind   AccessKind
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("segmentation fault: %s at %#x (%s)", f.Kind, f.Addr, f.Reason)
}

// Stats counts memory-system events. Loads and Stores count accesses
// (word-granularity for bulk operations); TLB counters are only meaningful
// when the TLB is enabled. Under StatsShared the counters are updated
// atomically; read them only after the accessing goroutines have been
// joined (or via atomic loads).
type Stats struct {
	Loads       uint64
	Stores      uint64
	TLBHits     uint64
	TLBMisses   uint64 // first-level misses
	TLB2Misses  uint64 // misses in both levels (cold page walks)
	PagesMapped uint64 // currently mapped pages
	PagesPeak   uint64 // high-water mark of mapped pages
	PagesDirty  uint64 // pages whose backing store was instantiated
	Faults      uint64
}

// Accesses returns the total number of loads and stores.
func (s *Stats) Accesses() uint64 { return s.Loads + s.Stores }

// StatsMode selects how per-access counters (Loads, Stores) are
// maintained; see SetStatsMode.
type StatsMode uint8

const (
	// StatsPrecise is the default: unsynchronized counters, correct when
	// each access sequence is confined to one goroutine at a time (the
	// experiment trials, the replicated runtime's per-replica spaces).
	StatsPrecise StatsMode = iota
	// StatsShared counts accesses exactly under concurrency through a
	// bank of cache-line-padded counter cells striped by page number,
	// aggregated into Stats on read. Workers operating on disjoint page
	// ranges — per-shard heap regions, per-worker page stripes — land on
	// different cells, so shared-mode accounting no longer serializes
	// every access on one contended cacheline.
	StatsShared
	// StatsOff disables per-access counting entirely: the fastest mode
	// for concurrent throughput work where counts are not needed.
	// Mapping counters (PagesMapped, PagesDirty, Faults) still update.
	StatsOff
)

// statsCells is the number of striped counter cells in StatsShared mode.
// A power of two so the per-access cell choice is one mask of the page
// number; 64 cells keeps the bank at one page of padded counters while
// making collisions between concurrent workers on disjoint working sets
// unlikely.
const statsCells = 64

// counterCell is one stripe of the shared-mode access counters, padded
// to a cache line so adjacent cells never false-share.
type counterCell struct {
	loads  atomic.Uint64
	stores atomic.Uint64
	_      [48]byte
}

// pteMapped marks a reserved page in a PTE's meta word, distinguishing a
// mapped-but-inaccessible page (ProtNone guard) from a hole.
const pteMapped = 1 << 2

// pte is a page-table entry. meta packs the protection bits and the
// mapped flag into one atomic word, the analog of a hardware PTE's
// permission bits; frame stays nil until the page is first accessed
// (lazy instantiation, §4.5), at which point it is atomically published.
// Lock-free readers load meta and frame independently; every observable
// interleaving corresponds to a legal serialization of the concurrent
// mapping operations.
type pte struct {
	frame atomic.Pointer[frame]
	meta  atomic.Uint32
}

// leaf is the second radix level: a fixed array of page-table entries.
type leaf struct {
	ptes [leafSlots]pte
}

// extent is a mapped address range [start, end), page-aligned, with
// uniform protection. Extents are the Map/Unmap/Protect bookkeeping
// source of truth; the access path reads only the page table.
type extent struct {
	start, end uint64
	prot       Prot
}

// tlbSize is the number of entries in the simulated first-level TLB,
// matching a Pentium-4-era data TLB. tlb2Size models the page-walk
// caching of the memory hierarchy: a much larger second level whose
// hits make repeated misses over a warm working set far cheaper than
// cold page walks.
const (
	tlbSize  = 64
	tlb2Size = 1024
)

// tlbState is the simulated TLB: FIFO-replacement, fully associative,
// two levels. It is allocated only when EnableTLB is called. Residency
// is tracked in a dense per-page bitmask (bit 0: first level, bit 1:
// second level) so the per-access membership test is one array load;
// the FIFO rings record insertion order for eviction. TLB simulation is
// inherently sequential state; it is accounted only under StatsPrecise.
type tlbState struct {
	present  []uint8
	tlbRing  [tlbSize]uint64
	tlbHand  int
	tlbLive  int
	tlb2Ring [tlb2Size]uint64
	tlb2Hand int
	tlb2Live int
}

// slot returns the residency bits for pn, growing the table on demand
// (page numbers are bounded by the space's highest mapping).
func (t *tlbState) slot(pn uint64) *uint8 {
	if pn >= uint64(len(t.present)) {
		grown := make([]uint8, pn+pn/2+64)
		copy(grown, t.present)
		t.present = grown
	}
	return &t.present[pn]
}

// Space is a simulated virtual address space. Loads, stores, and the bulk
// operations are safe for concurrent use by multiple goroutines (choose a
// stats mode accordingly); Map, Unmap, and Protect serialize internally
// and their effects are visible to accesses that happen after them.
// Configuration calls (EnableTLB, SetPageFiller, AddAccessHook,
// SetStatsMode) must precede concurrent use.
type Space struct {
	// mu serializes address-space mutation: Map/Unmap/Protect, extent
	// bookkeeping, slab carving, and first-touch instantiation.
	mu      sync.Mutex
	extents []extent // sorted by start, non-overlapping; under mu
	next    uint64   // next free virtual address for Map; under mu
	stats   Stats
	mode    StatsMode
	cells   *[statsCells]counterCell // striped access counters; StatsShared only
	filler  func([]byte)             // optional initializer for fresh page contents; under mu

	// Slab allocation of page frames: fresh frames are carved from
	// arena; frames released by Unmap are recycled through freeFrames.
	// All under mu.
	arena      []byte
	arenaOff   int
	freeFrames []*frame

	// accessHook, when non-nil, is invoked with the page number of every
	// successful translation, after TLB accounting. Runs without a hook
	// and without the TLB pay two predictable nil checks.
	accessHook func(pn uint64)
	tlb        *tlbState

	// dir is the first radix level: leaf pointers are published with
	// atomic stores under mu and read lock-free on every access. The
	// fixed array keeps the translation chain as short as a mutable
	// slice field while making publication a single atomic store.
	dir [dirSlots]atomic.Pointer[leaf]
}

// NewSpace returns an empty address space. Address 0 is never mapped, so 0
// serves as the null pointer. The simulated TLB starts disabled; call
// EnableTLB for experiments that model translation costs.
func NewSpace() *Space {
	return &Space{
		next: 0x10000, // leave a generous null guard region
	}
}

// SetStatsMode selects how per-access counters are maintained. The
// default, StatsPrecise, is exact and free of synchronization but assumes
// accesses are not concurrent with each other; spaces accessed by several
// goroutines at once use StatsShared (striped atomic cells, exact,
// aggregated by Stats) or StatsOff (uncounted). Must be called before the
// space is shared. TLB accounting only runs under StatsPrecise.
func (s *Space) SetStatsMode(m StatsMode) {
	s.mode = m
	if m == StatsShared && s.cells == nil {
		s.cells = new([statsCells]counterCell)
	}
}

// AddAccessHook chains an accounting function invoked with the page
// number of every successful translation, after any hooks installed
// earlier (and after TLB accounting, which uses a direct call). Runs
// that install no hook pay nothing on the access path. Hooks run on the
// accessing goroutine, outside the space mutex.
func (s *Space) AddAccessHook(fn func(pageNumber uint64)) {
	if prev := s.accessHook; prev != nil {
		s.accessHook = func(pn uint64) { prev(pn); fn(pn) }
	} else {
		s.accessHook = fn
	}
}

// EnableTLB turns on TLB simulation. Subsequent accesses count hits and
// misses against a 64-entry FIFO TLB backed by a 1024-entry second level.
// The TLB models a single hardware context and is accounted only under
// StatsPrecise (single-goroutine access).
func (s *Space) EnableTLB() {
	if s.tlb != nil {
		return
	}
	s.tlb = &tlbState{}
}

// SetPageFiller installs a function invoked on each fresh page's backing
// store before first use. DieHard's replicated mode uses this to realize
// §4.1's "fill the heap with random values" lazily: every page a replica
// ever observes is pre-filled from that replica's private random stream.
// A nil filler restores zero-fill. The filler runs under the space
// mutex, so invocations never overlap, but their order across pages
// follows first-touch order, which is scheduling-dependent when several
// goroutines share the space.
func (s *Space) SetPageFiller(fill func([]byte)) { s.filler = fill }

// Stats returns a pointer to the space's counters. In StatsShared mode
// the striped access cells are drained into the struct first (so read
// Loads/Stores through a fresh Stats call, not a pointer held across
// accesses); under concurrent access, read the result only at
// quiescence.
func (s *Space) Stats() *Stats {
	if s.cells != nil {
		for i := range s.cells {
			if n := s.cells[i].loads.Swap(0); n != 0 {
				atomic.AddUint64(&s.stats.Loads, n)
			}
			if n := s.cells[i].stores.Swap(0); n != 0 {
				atomic.AddUint64(&s.stats.Stores, n)
			}
		}
	}
	return &s.stats
}

// StatsSnapshot returns a copy of the counters with every field loaded
// atomically and the shared-mode access cells summed in WITHOUT
// draining them — unlike Stats, it never mutates the space, so it is
// safe to call from a metrics scrape while accessing goroutines run
// (per-counter values are torn-free; cross-counter skew is bounded by
// the walk). Quiescent calls are exact.
func (s *Space) StatsSnapshot() Stats {
	snap := Stats{
		Loads:       atomic.LoadUint64(&s.stats.Loads),
		Stores:      atomic.LoadUint64(&s.stats.Stores),
		TLBHits:     atomic.LoadUint64(&s.stats.TLBHits),
		TLBMisses:   atomic.LoadUint64(&s.stats.TLBMisses),
		TLB2Misses:  atomic.LoadUint64(&s.stats.TLB2Misses),
		PagesMapped: atomic.LoadUint64(&s.stats.PagesMapped),
		PagesPeak:   atomic.LoadUint64(&s.stats.PagesPeak),
		PagesDirty:  atomic.LoadUint64(&s.stats.PagesDirty),
		Faults:      atomic.LoadUint64(&s.stats.Faults),
	}
	if s.cells != nil {
		for i := range s.cells {
			snap.Loads += s.cells[i].loads.Load()
			snap.Stores += s.cells[i].stores.Load()
		}
	}
	return snap
}

// PublishMetrics registers the space's counters as vmem.* gauges in
// the registry (internal/obs — the telemetry leaf below every layer,
// so the memory system importing it creates no cycle). Each gauge
// pulls one StatsSnapshot field at scrape time, so live scrapes are
// race-free under StatsShared.
func (s *Space) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	type g struct {
		name string
		f    func(*Stats) uint64
	}
	for _, m := range []g{
		{"vmem.loads", func(st *Stats) uint64 { return st.Loads }},
		{"vmem.stores", func(st *Stats) uint64 { return st.Stores }},
		{"vmem.tlb_hits", func(st *Stats) uint64 { return st.TLBHits }},
		{"vmem.tlb_misses", func(st *Stats) uint64 { return st.TLBMisses }},
		{"vmem.pages_mapped", func(st *Stats) uint64 { return st.PagesMapped }},
		{"vmem.pages_peak", func(st *Stats) uint64 { return st.PagesPeak }},
		{"vmem.pages_dirty", func(st *Stats) uint64 { return st.PagesDirty }},
		{"vmem.faults", func(st *Stats) uint64 { return st.Faults }},
	} {
		field := m.f
		reg.Gauge(m.name, func() float64 {
			st := s.StatsSnapshot()
			return float64(field(&st))
		})
	}
}

// PageGranularBulk marks this memory's bulk operations as page-granular:
// a chunked read or write touches exactly the pages a byte-at-a-time
// loop would touch, and no access check finer than the page exists.
// libc's string functions key their chunked fast paths on this marker;
// memories that interpose per-access semantics (the policy runtimes)
// must not implement it.
func (s *Space) PageGranularBulk() {}

// countLoads and countStores account word-granularity accesses in the
// selected stats mode, given the address of the access (bulk operations
// pass their starting address). The precise branch is the hot default;
// shared mode stripes the atomic add across cells by page number so
// workers on disjoint pages do not contend on one cacheline.
func (s *Space) countLoads(addr, n uint64) {
	if s.mode == StatsPrecise {
		s.stats.Loads += n
	} else if s.mode == StatsShared {
		s.cells[(addr>>pageShift)&(statsCells-1)].loads.Add(n)
	}
}

func (s *Space) countStores(addr, n uint64) {
	if s.mode == StatsPrecise {
		s.stats.Stores += n
	} else if s.mode == StatsShared {
		s.cells[(addr>>pageShift)&(statsCells-1)].stores.Add(n)
	}
}

// countFault accounts a fault. Faults are off the hot path and may be
// raised concurrently, so they are always counted atomically.
func (s *Space) countFault() { atomic.AddUint64(&s.stats.Faults, 1) }

// lookup returns the page-table entry for a page number, or nil when no
// leaf covers it. The returned entry may still be unmapped. Lock-free.
func (s *Space) lookup(pn uint64) *pte {
	if di := pn >> leafBits; di < dirSlots {
		if l := s.dir[di].Load(); l != nil {
			return &l.ptes[pn&leafMask]
		}
	}
	return nil
}

// ensureLeaf returns the leaf covering a page number, allocating and
// publishing it on demand. Caller holds mu; readers observe the new
// leaf through atomic loads.
func (s *Space) ensureLeaf(pn uint64) *leaf {
	di := pn >> leafBits
	if l := s.dir[di].Load(); l != nil {
		return l
	}
	l := new(leaf)
	s.dir[di].Store(l)
	return l
}

// allocFrame returns a zeroed page frame, recycling frames released by
// Unmap and otherwise carving them from 1 MB slab arenas. Caller holds mu.
func (s *Space) allocFrame() *frame {
	if n := len(s.freeFrames); n > 0 {
		f := s.freeFrames[n-1]
		s.freeFrames = s.freeFrames[:n-1]
		clear(f[:])
		return f
	}
	if s.arenaOff == len(s.arena) {
		s.arena = make([]byte, slabPages*PageSize)
		s.arenaOff = 0
	}
	f := (*frame)(s.arena[s.arenaOff : s.arenaOff+PageSize])
	s.arenaOff += PageSize
	return f
}

// Map reserves n bytes (rounded up to whole pages) with the given
// protection and returns the base address. The pages are lazily
// instantiated: untouched pages consume no backing memory, mirroring the
// paper's note that DieHard's reserved-but-unused partitions cost nothing.
// A one-page unmapped hole is left after every mapping so distinct
// mappings are never adjacent.
func (s *Space) Map(n int, prot Prot) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vmem: Map size %d must be positive", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	npages := uint64((n + PageSize - 1) / PageSize)
	base := s.next
	if base+(npages+1)*PageSize > maxAddr {
		return 0, fmt.Errorf("vmem: address space exhausted (%d pages requested at %#x)", npages, base)
	}
	s.extents = append(s.extents, extent{start: base, end: base + npages*PageSize, prot: prot})
	s.next = base + (npages+1)*PageSize // +1: unmapped hole
	for pn := base >> pageShift; pn < (base>>pageShift)+npages; pn++ {
		l := s.ensureLeaf(pn)
		l.ptes[pn&leafMask].meta.Store(uint32(prot) | pteMapped)
	}
	s.stats.PagesMapped += npages
	if s.stats.PagesMapped > s.stats.PagesPeak {
		s.stats.PagesPeak = s.stats.PagesMapped
	}
	return base, nil
}

// MapGuarded reserves n bytes of read-write memory with a no-access guard
// page immediately before and after, as DieHard places around large
// objects and its heap regions. It returns the address of the usable
// region.
func (s *Space) MapGuarded(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("vmem: MapGuarded size %d must be positive", n)
	}
	npages := (n + PageSize - 1) / PageSize
	base, err := s.Map((npages+2)*PageSize, ProtRW)
	if err != nil {
		return 0, err
	}
	if err := s.Protect(base, PageSize, ProtNone); err != nil {
		return 0, err
	}
	if err := s.Protect(base+uint64(npages+1)*PageSize, PageSize, ProtNone); err != nil {
		return 0, err
	}
	return base + PageSize, nil
}

// findExtent returns the index of the extent containing addr, or -1.
// Caller holds mu.
func (s *Space) findExtent(addr uint64) int {
	i := sort.Search(len(s.extents), func(i int) bool { return s.extents[i].end > addr })
	if i < len(s.extents) && s.extents[i].start <= addr {
		return i
	}
	return -1
}

// carve splits extents so that [addr, addr+bytes) is covered exactly by a
// run of whole extents, returning the index range [lo, hi) of that run.
// It fails if any page in the range is unmapped. Caller holds mu.
func (s *Space) carve(addr, bytes uint64) (lo, hi int, err error) {
	end := addr + bytes
	// Verify full coverage first so failures have no side effects.
	at := addr
	for at < end {
		i := s.findExtent(at)
		if i < 0 {
			return 0, 0, &Fault{Addr: at, Kind: AccessFree, Reason: "operation on unmapped page"}
		}
		at = s.extents[i].end
	}
	lo = s.findExtent(addr)
	if s.extents[lo].start < addr {
		e := s.extents[lo]
		s.extents = append(s.extents, extent{})
		copy(s.extents[lo+1:], s.extents[lo:])
		s.extents[lo] = extent{start: e.start, end: addr, prot: e.prot}
		s.extents[lo+1].start = addr
		lo++
	}
	hi = s.findExtent(end - 1)
	if s.extents[hi].end > end {
		e := s.extents[hi]
		s.extents = append(s.extents, extent{})
		copy(s.extents[hi+1:], s.extents[hi:])
		s.extents[hi] = extent{start: e.start, end: end, prot: e.prot}
		s.extents[hi+1].start = end
	}
	return lo, hi + 1, nil
}

// Unmap removes the mapping for [addr, addr+n). addr must be page-aligned
// and the whole range must be mapped; otherwise a *Fault is returned and
// nothing is unmapped. An access racing with Unmap of the same range
// either completes before it or faults after it, as on real hardware;
// racing on memory being unmapped is a bug in the simulated program.
func (s *Space) Unmap(addr uint64, n int) error {
	if addr%PageSize != 0 || n <= 0 {
		return &Fault{Addr: addr, Kind: AccessFree, Reason: "unaligned or empty unmap"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bytes := uint64((n+PageSize-1)/PageSize) * PageSize
	lo, hi, err := s.carve(addr, bytes)
	if err != nil {
		s.countFault()
		return err
	}
	s.extents = append(s.extents[:lo], s.extents[hi:]...)
	for pn := addr >> pageShift; pn < (addr+bytes)>>pageShift; pn++ {
		p := s.lookup(pn)
		// Revoke the translation before recycling the frame so lock-free
		// readers that re-walk see the hole first.
		p.meta.Store(0)
		if f := p.frame.Swap(nil); f != nil {
			s.freeFrames = append(s.freeFrames, f)
			atomic.AddUint64(&s.stats.PagesDirty, ^uint64(0))
		}
	}
	s.stats.PagesMapped -= bytes / PageSize
	return nil
}

// Protect changes the protection of the page-aligned range [addr, addr+n).
// The change is visible immediately: the affected page-table entries are
// rewritten, so there are no stale cached translations.
func (s *Space) Protect(addr uint64, n int, prot Prot) error {
	if addr%PageSize != 0 || n <= 0 {
		return &Fault{Addr: addr, Kind: AccessFree, Reason: "unaligned or empty protect"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bytes := uint64((n+PageSize-1)/PageSize) * PageSize
	lo, hi, err := s.carve(addr, bytes)
	if err != nil {
		s.countFault()
		return err
	}
	for i := lo; i < hi; i++ {
		s.extents[i].prot = prot
	}
	for pn := addr >> pageShift; pn < (addr+bytes)>>pageShift; pn++ {
		s.lookup(pn).meta.Store(uint32(prot) | pteMapped)
	}
	return nil
}

// Mapped reports whether addr lies within a mapped page (of any
// protection).
func (s *Space) Mapped(addr uint64) bool {
	p := s.lookup(addr >> pageShift)
	return p != nil && p.meta.Load()&pteMapped != 0
}

// translate resolves an access: a two-level radix walk plus a protection
// mask test, all through atomic loads — the lock-free fast path covers
// instantiated pages with sufficient permissions. Everything else
// (faults, lazy instantiation) takes translateSlow, which serializes on
// the space mutex. It returns the page's backing frame — as a slice, so
// callers skip the array-pointer nil check, which would touch the
// frame's first cache line on every access — and the offset within it.
// kind must be AccessLoad or AccessStore.
func (s *Space) translate(addr uint64, kind AccessKind) ([]byte, uint64, error) {
	pn := addr >> pageShift
	if di := pn >> leafBits; di < dirSlots {
		if l := s.dir[di].Load(); l != nil {
			p := &l.ptes[pn&leafMask]
			// The permission bit for AccessLoad (0) is ProtRead, for
			// AccessStore (1) ProtWrite = ProtRead<<1.
			if p.meta.Load()&(uint32(ProtRead)<<kind) != 0 {
				if f := p.frame.Load(); f != nil {
					if s.tlb != nil && s.mode == StatsPrecise {
						s.tlbTouch(pn)
					}
					if s.accessHook != nil {
						s.accessHook(pn)
					}
					return f[:], addr & offMask, nil
				}
			}
		}
	}
	return s.translateSlow(addr, kind)
}

// translateSlow handles the cases the fast path rejects: unmapped pages,
// protection violations, and first-touch instantiation. It re-walks
// under the space mutex so instantiation races resolve to a single frame
// and the page filler runs exactly once per page.
func (s *Space) translateSlow(addr uint64, kind AccessKind) ([]byte, uint64, error) {
	pn := addr >> pageShift
	s.mu.Lock()
	p := s.lookup(pn)
	if p == nil || p.meta.Load()&pteMapped == 0 {
		s.mu.Unlock()
		s.countFault()
		return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: "unmapped address"}
	}
	meta := p.meta.Load()
	need := uint32(ProtRead)
	if kind == AccessStore {
		need = uint32(ProtWrite)
	}
	if meta&need == 0 {
		s.mu.Unlock()
		s.countFault()
		reason := "protection violation"
		if Prot(meta&^pteMapped) == ProtNone {
			reason = "guard page"
		}
		return nil, 0, &Fault{Addr: addr, Kind: kind, Reason: reason}
	}
	f := p.frame.Load()
	if f == nil {
		f = s.allocFrame()
		if s.filler != nil {
			s.filler(f[:])
		}
		p.frame.Store(f)
		atomic.AddUint64(&s.stats.PagesDirty, 1)
	}
	s.mu.Unlock()
	if s.tlb != nil && s.mode == StatsPrecise {
		s.tlbTouch(pn)
	}
	if s.accessHook != nil {
		s.accessHook(pn)
	}
	return f[:], addr & offMask, nil
}

func (s *Space) tlbTouch(pn uint64) {
	t := s.tlb
	p := t.slot(pn)
	if *p&1 != 0 {
		s.stats.TLBHits++
		return
	}
	s.stats.TLBMisses++
	if t.tlbLive == tlbSize {
		t.present[t.tlbRing[t.tlbHand]] &^= 1
	} else {
		t.tlbLive++
	}
	t.tlbRing[t.tlbHand] = pn
	*p |= 1
	t.tlbHand = (t.tlbHand + 1) % tlbSize
	// Second level: a warm translation costs a short refill; a miss in
	// both levels is a cold page walk.
	if *p&2 != 0 {
		return
	}
	s.stats.TLB2Misses++
	if t.tlb2Live == tlb2Size {
		t.present[t.tlb2Ring[t.tlb2Hand]] &^= 2
	} else {
		t.tlb2Live++
	}
	t.tlb2Ring[t.tlb2Hand] = pn
	*p |= 2
	t.tlb2Hand = (t.tlb2Hand + 1) % tlb2Size
}

// Load8 loads one byte.
func (s *Space) Load8(addr uint64) (byte, error) {
	d, off, err := s.translate(addr, AccessLoad)
	if err != nil {
		return 0, err
	}
	s.countLoads(addr, 1)
	return d[off], nil
}

// Store8 stores one byte.
func (s *Space) Store8(addr uint64, v byte) error {
	d, off, err := s.translate(addr, AccessStore)
	if err != nil {
		return err
	}
	s.countStores(addr, 1)
	d[off] = v
	return nil
}

// Load32 loads a little-endian 32-bit value. The access may straddle a
// page boundary.
func (s *Space) Load32(addr uint64) (uint32, error) {
	if addr&offMask <= PageSize-4 {
		d, off, err := s.translate(addr, AccessLoad)
		if err != nil {
			return 0, err
		}
		s.countLoads(addr, 1)
		return binary.LittleEndian.Uint32(d[off:]), nil
	}
	var v uint32
	for i := uint64(0); i < 4; i++ {
		b, err := s.Load8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Store32 stores a little-endian 32-bit value.
func (s *Space) Store32(addr uint64, v uint32) error {
	if addr&offMask <= PageSize-4 {
		d, off, err := s.translate(addr, AccessStore)
		if err != nil {
			return err
		}
		s.countStores(addr, 1)
		binary.LittleEndian.PutUint32(d[off:], v)
		return nil
	}
	for i := uint64(0); i < 4; i++ {
		if err := s.Store8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Load64 loads a little-endian 64-bit value.
func (s *Space) Load64(addr uint64) (uint64, error) {
	if addr&offMask <= PageSize-8 {
		d, off, err := s.translate(addr, AccessLoad)
		if err != nil {
			return 0, err
		}
		s.countLoads(addr, 1)
		return binary.LittleEndian.Uint64(d[off:]), nil
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		b, err := s.Load8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Store64 stores a little-endian 64-bit value.
func (s *Space) Store64(addr uint64, v uint64) error {
	if addr&offMask <= PageSize-8 {
		d, off, err := s.translate(addr, AccessStore)
		if err != nil {
			return err
		}
		s.countStores(addr, 1)
		binary.LittleEndian.PutUint64(d[off:], v)
		return nil
	}
	for i := uint64(0); i < 8; i++ {
		if err := s.Store8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes fills b from the simulated memory starting at addr. Bulk
// operations count one access per 8 bytes, roughly modeling
// word-granularity copies.
func (s *Space) ReadBytes(addr uint64, b []byte) error {
	read := 0
	for read < len(b) {
		d, off, err := s.translate(addr+uint64(read), AccessLoad)
		if err != nil {
			return err
		}
		n := copy(b[read:], d[off:])
		s.countLoads(addr+uint64(read), uint64(n+7)/8)
		read += n
	}
	return nil
}

// WriteBytes copies b into the simulated memory starting at addr.
func (s *Space) WriteBytes(addr uint64, b []byte) error {
	written := 0
	for written < len(b) {
		d, off, err := s.translate(addr+uint64(written), AccessStore)
		if err != nil {
			return err
		}
		n := copy(d[off:], b[written:])
		s.countStores(addr+uint64(written), uint64(n+7)/8)
		written += n
	}
	return nil
}

// Memset writes n copies of v starting at addr.
func (s *Space) Memset(addr uint64, v byte, n int) error {
	done := 0
	for done < n {
		d, off, err := s.translate(addr+uint64(done), AccessStore)
		if err != nil {
			return err
		}
		chunk := PageSize - int(off)
		if chunk > n-done {
			chunk = n - done
		}
		sl := d[off : int(off)+chunk]
		for i := range sl {
			sl[i] = v
		}
		s.countStores(addr+uint64(done), uint64(chunk+7)/8)
		done += chunk
	}
	return nil
}

// FindByte scans forward from addr for the first occurrence of c,
// examining at most limit bytes, and returns its offset from addr. The
// scan runs a page at a time over the backing frames, so it visits
// exactly the pages a byte-by-byte loop would visit and faults in the
// same places; accesses are counted at word granularity like the other
// bulk operations. found is false when limit bytes were examined without
// a match.
func (s *Space) FindByte(addr uint64, c byte, limit int) (int, bool, error) {
	scanned := 0
	for scanned < limit {
		d, off, err := s.translate(addr+uint64(scanned), AccessLoad)
		if err != nil {
			return scanned, false, err
		}
		chunk := PageSize - int(off)
		if chunk > limit-scanned {
			chunk = limit - scanned
		}
		idx := bytes.IndexByte(d[off:int(off)+chunk], c)
		if idx >= 0 {
			s.countLoads(addr+uint64(scanned), uint64(idx+1+7)/8)
			return scanned + idx, true, nil
		}
		s.countLoads(addr+uint64(scanned), uint64(chunk+7)/8)
		scanned += chunk
	}
	return scanned, false, nil
}

// MemMove copies n bytes from src to dst within the space, handling
// overlap like C's memmove. Non-overlapping ranges are copied page by
// page directly between backing frames; overlapping ranges go through a
// staging buffer. A fault mid-copy leaves the destination partially
// written up to the faulting page, as a real memmove would.
func (s *Space) MemMove(dst, src uint64, n int) error {
	if n <= 0 || dst == src {
		return nil
	}
	if dst < src+uint64(n) && src < dst+uint64(n) {
		// Overlapping: stage through a buffer so the source is fully
		// read before the destination is written.
		buf := make([]byte, n)
		if err := s.ReadBytes(src, buf); err != nil {
			return err
		}
		return s.WriteBytes(dst, buf)
	}
	copied := 0
	for copied < n {
		sd, soff, err := s.translate(src+uint64(copied), AccessLoad)
		if err != nil {
			return err
		}
		dd, doff, err := s.translate(dst+uint64(copied), AccessStore)
		if err != nil {
			return err
		}
		chunk := n - copied
		if c := PageSize - int(soff); c < chunk {
			chunk = c
		}
		if c := PageSize - int(doff); c < chunk {
			chunk = c
		}
		copy(dd[doff:int(doff)+chunk], sd[soff:int(soff)+chunk])
		words := uint64(chunk+7) / 8
		s.countLoads(src+uint64(copied), words)
		s.countStores(dst+uint64(copied), words)
		copied += chunk
	}
	return nil
}
