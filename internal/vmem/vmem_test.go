package vmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	s := NewSpace()
	base, err := s.Map(2*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store64(base, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load64(base)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("round trip got %#x", v)
	}
}

func TestNullIsUnmapped(t *testing.T) {
	s := NewSpace()
	if _, err := s.Load8(0); err == nil {
		t.Fatal("load of address 0 should fault")
	}
	var f *Fault
	_, err := s.Load8(0)
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %T", err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	// The page after the hole after the mapping is unmapped.
	if err := s.Store8(base+2*PageSize, 1); err == nil {
		t.Fatal("store past mapping should fault")
	}
	if s.Stats().Faults == 0 {
		t.Fatal("fault counter not incremented")
	}
}

func TestMappingsNotAdjacent(t *testing.T) {
	s := NewSpace()
	a, _ := s.Map(PageSize, ProtRW)
	b, _ := s.Map(PageSize, ProtRW)
	if b == a+PageSize {
		t.Fatal("mappings are adjacent; overflow from one would silently hit the next")
	}
	if err := s.Store8(a+PageSize, 7); err == nil {
		t.Fatal("store into the hole between mappings should fault")
	}
}

func TestGuardPages(t *testing.T) {
	s := NewSpace()
	base, err := s.MapGuarded(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 1); err != nil {
		t.Fatalf("usable region should be writable: %v", err)
	}
	if err := s.Store8(base-1, 1); err == nil {
		t.Fatal("write into leading guard page should fault")
	}
	if err := s.Store8(base+PageSize, 1); err == nil {
		t.Fatal("write into trailing guard page should fault")
	}
	var f *Fault
	err = s.Store8(base-1, 1)
	if !errors.As(err, &f) || f.Reason != "guard page" {
		t.Fatalf("expected guard page fault, got %v", err)
	}
}

func TestProtectReadOnly(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.Store8(base, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(base, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base); err != nil {
		t.Fatalf("read of read-only page failed: %v", err)
	}
	if err := s.Store8(base, 1); err == nil {
		t.Fatal("write to read-only page should fault")
	}
}

func TestUnmapThenAccessFaults(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	if err := s.Store8(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base); err == nil {
		t.Fatal("access after unmap should fault")
	}
	if s.Stats().PagesMapped != 0 {
		t.Fatalf("PagesMapped = %d after full unmap", s.Stats().PagesMapped)
	}
}

func TestUnmapErrors(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.Unmap(base+1, PageSize); err == nil {
		t.Fatal("unaligned unmap should fail")
	}
	if err := s.Unmap(base+4*PageSize, PageSize); err == nil {
		t.Fatal("unmap of unmapped range should fail")
	}
	// Partial overlap: nothing should be unmapped.
	if err := s.Unmap(base, 2*PageSize); err == nil {
		t.Fatal("unmap extending past mapping should fail")
	}
	if _, err := s.Load8(base); err != nil {
		t.Fatalf("failed unmap must not tear down pages: %v", err)
	}
}

func TestCrossPageAccesses(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	addr := base + PageSize - 3 // 64-bit value straddles the boundary
	if err := s.Store64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("cross-page round trip got %#x", v)
	}
	if err := s.Store32(base+PageSize-2, 0xaabbccdd); err != nil {
		t.Fatal(err)
	}
	v32, err := s.Load32(base + PageSize - 2)
	if err != nil {
		t.Fatal(err)
	}
	if v32 != 0xaabbccdd {
		t.Fatalf("cross-page 32-bit round trip got %#x", v32)
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(3*PageSize, ProtRW)
	msg := bytes.Repeat([]byte("abcdefgh"), 1000) // spans pages
	if err := s.WriteBytes(base+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.ReadBytes(base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("ReadBytes did not return what WriteBytes stored")
	}
}

func TestMemset(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	if err := s.Memset(base+10, 0xAB, 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if err := s.ReadBytes(base+10, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
}

func TestMemMoveOverlap(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.WriteBytes(base, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := s.MemMove(base+2, base, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	_ = s.ReadBytes(base, got)
	if string(got) != "0101234567" {
		t.Fatalf("overlapping MemMove got %q", got)
	}
}

func TestLazyInstantiation(t *testing.T) {
	s := NewSpace()
	// Reserve a large region; it should cost nothing until touched.
	base, err := s.Map(1<<20, ProtRW) // 256 pages
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().PagesDirty != 0 {
		t.Fatalf("untouched mapping instantiated %d pages", s.Stats().PagesDirty)
	}
	if err := s.Store8(base+5*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().PagesDirty != 1 {
		t.Fatalf("one touch should dirty one page, got %d", s.Stats().PagesDirty)
	}
}

func TestFreshPagesAreZero(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	v, err := s.Load64(base + 128)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("fresh page contained %#x", v)
	}
}

func TestTLBSimulation(t *testing.T) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(256*PageSize, ProtRW)

	// Touch one page repeatedly: 1 miss, then hits.
	for i := 0; i < 100; i++ {
		if err := s.Store8(base, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.TLBMisses != 1 || st.TLBHits != 99 {
		t.Fatalf("expected 1 miss/99 hits, got %d/%d", st.TLBMisses, st.TLBHits)
	}

	// Touch more distinct pages than TLB entries (disjoint from the page
	// above): with FIFO replacement every revisit misses.
	before := st.TLBMisses
	for round := 0; round < 2; round++ {
		for p := 64; p < 192; p++ {
			if err := s.Store8(base+uint64(p)*PageSize, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	misses := s.Stats().TLBMisses - before
	if misses != 256 {
		t.Fatalf("FIFO TLB over 128 pages x2 rounds should miss every time, got %d/256", misses)
	}
}

func TestTLBLocalityBeatsSpread(t *testing.T) {
	// The mechanism behind the paper's 300.twolf observation: the same
	// number of accesses spread over many pages misses far more.
	dense := NewSpace()
	dense.EnableTLB()
	db, _ := dense.Map(512*PageSize, ProtRW)
	sparse := NewSpace()
	sparse.EnableTLB()
	sb, _ := sparse.Map(512*PageSize, ProtRW)

	for i := 0; i < 10000; i++ {
		_ = dense.Store8(db+uint64(i%(8*PageSize)), 1)                 // 8 pages
		_ = sparse.Store8(sb+uint64((i*PageSize+i)%(512*PageSize)), 1) // all pages
	}
	if dense.Stats().TLBMisses >= sparse.Stats().TLBMisses {
		t.Fatalf("dense (%d misses) should beat sparse (%d misses)",
			dense.Stats().TLBMisses, sparse.Stats().TLBMisses)
	}
}

func TestAccessCounters(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	_ = s.Store64(base, 1)
	_, _ = s.Load64(base)
	_ = s.Store8(base, 1)
	st := s.Stats()
	if st.Stores != 2 || st.Loads != 1 {
		t.Fatalf("counters loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.Accesses() != 3 {
		t.Fatalf("Accesses() = %d", st.Accesses())
	}
}

func TestPeakPages(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(4*PageSize, ProtRW)
	if err := s.Unmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Map(PageSize, ProtRW)
	if s.Stats().PagesPeak != 4 {
		t.Fatalf("peak = %d, want 4", s.Stats().PagesPeak)
	}
}

func TestMapRejectsBadSizes(t *testing.T) {
	s := NewSpace()
	if _, err := s.Map(0, ProtRW); err == nil {
		t.Fatal("Map(0) should fail")
	}
	if _, err := s.Map(-5, ProtRW); err == nil {
		t.Fatal("Map(-5) should fail")
	}
	if _, err := s.MapGuarded(0); err == nil {
		t.Fatal("MapGuarded(0) should fail")
	}
}

func TestQuickStoreLoadRoundTrip(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(16*PageSize, ProtRW)
	f := func(off uint16, v uint64) bool {
		addr := base + uint64(off)
		if err := s.Store64(addr, v); err != nil {
			return false
		}
		got, err := s.Load64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWriteReadBytes(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(64*PageSize, ProtRW)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := base + uint64(off)
		if err := s.WriteBytes(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadBytes(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64(b *testing.B) {
	s := NewSpace()
	base, _ := s.Map(1<<20, ProtRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
	}
}

func BenchmarkStore64TLB(b *testing.B) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(1<<20, ProtRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
	}
}

func TestProtectMiddleOfMapping(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(6*PageSize, ProtRW)
	// Guard the middle two pages; the flanks stay writable.
	if err := s.Protect(base+2*PageSize, 2*PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 1); err != nil {
		t.Fatalf("left flank: %v", err)
	}
	if err := s.Store8(base+5*PageSize, 1); err != nil {
		t.Fatalf("right flank: %v", err)
	}
	if err := s.Store8(base+3*PageSize, 1); err == nil {
		t.Fatal("guarded middle should fault")
	}
	// Re-open the middle.
	if err := s.Protect(base+2*PageSize, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base+3*PageSize, 1); err != nil {
		t.Fatalf("reopened middle: %v", err)
	}
}

func TestUnmapMiddleOfMapping(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(5*PageSize, ProtRW)
	if err := s.Store8(base+2*PageSize, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base+2*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base + 2*PageSize); err == nil {
		t.Fatal("unmapped middle page accessible")
	}
	if err := s.Store8(base+PageSize, 1); err != nil {
		t.Fatalf("page before hole: %v", err)
	}
	if err := s.Store8(base+3*PageSize, 1); err != nil {
		t.Fatalf("page after hole: %v", err)
	}
	if s.Stats().PagesMapped != 4 {
		t.Fatalf("PagesMapped = %d, want 4", s.Stats().PagesMapped)
	}
}

func TestPageFiller(t *testing.T) {
	s := NewSpace()
	n := byte(0)
	s.SetPageFiller(func(b []byte) {
		for i := range b {
			b[i] = 0xC0 | n&0xF
		}
		n++
	})
	base, _ := s.Map(4*PageSize, ProtRW)
	v, err := s.Load8(base + 2*PageSize + 17)
	if err != nil {
		t.Fatal(err)
	}
	if v&0xF0 != 0xC0 {
		t.Fatalf("filler not applied: %#x", v)
	}
	// The filler only runs on first instantiation: writes persist.
	if err := s.Store8(base, 0x11); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Load8(base)
	if got != 0x11 {
		t.Fatalf("write lost: %#x", got)
	}
	// Clearing the filler restores zero-fill for new pages.
	s.SetPageFiller(nil)
	base2, _ := s.Map(PageSize, ProtRW)
	got, _ = s.Load8(base2)
	if got != 0 {
		t.Fatalf("nil filler should zero-fill: %#x", got)
	}
}

func TestTLBSecondLevelCounters(t *testing.T) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(100*PageSize, ProtRW)
	// First pass over 100 pages: every access is a cold walk.
	for p := 0; p < 100; p++ {
		_ = s.Store8(base+uint64(p)*PageSize, 1)
	}
	st := s.Stats()
	if st.TLB2Misses != 100 || st.TLBMisses != 100 {
		t.Fatalf("cold pass: L1=%d L2=%d", st.TLBMisses, st.TLB2Misses)
	}
	// Second pass: 100 pages exceed the 64-entry L1 (all miss) but fit
	// the second level (no cold walks).
	for p := 0; p < 100; p++ {
		_ = s.Store8(base+uint64(p)*PageSize, 1)
	}
	st = s.Stats()
	if st.TLB2Misses != 100 {
		t.Fatalf("warm pass caused cold walks: %d", st.TLB2Misses)
	}
	if st.TLBMisses != 200 {
		t.Fatalf("warm pass should still miss L1: %d", st.TLBMisses)
	}
}
