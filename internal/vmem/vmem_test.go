package vmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	s := NewSpace()
	base, err := s.Map(2*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store64(base, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load64(base)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("round trip got %#x", v)
	}
}

func TestNullIsUnmapped(t *testing.T) {
	s := NewSpace()
	if _, err := s.Load8(0); err == nil {
		t.Fatal("load of address 0 should fault")
	}
	var f *Fault
	_, err := s.Load8(0)
	if !errors.As(err, &f) {
		t.Fatalf("expected *Fault, got %T", err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	// The page after the hole after the mapping is unmapped.
	if err := s.Store8(base+2*PageSize, 1); err == nil {
		t.Fatal("store past mapping should fault")
	}
	if s.Stats().Faults == 0 {
		t.Fatal("fault counter not incremented")
	}
}

func TestMappingsNotAdjacent(t *testing.T) {
	s := NewSpace()
	a, _ := s.Map(PageSize, ProtRW)
	b, _ := s.Map(PageSize, ProtRW)
	if b == a+PageSize {
		t.Fatal("mappings are adjacent; overflow from one would silently hit the next")
	}
	if err := s.Store8(a+PageSize, 7); err == nil {
		t.Fatal("store into the hole between mappings should fault")
	}
}

func TestGuardPages(t *testing.T) {
	s := NewSpace()
	base, err := s.MapGuarded(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 1); err != nil {
		t.Fatalf("usable region should be writable: %v", err)
	}
	if err := s.Store8(base-1, 1); err == nil {
		t.Fatal("write into leading guard page should fault")
	}
	if err := s.Store8(base+PageSize, 1); err == nil {
		t.Fatal("write into trailing guard page should fault")
	}
	var f *Fault
	err = s.Store8(base-1, 1)
	if !errors.As(err, &f) || f.Reason != "guard page" {
		t.Fatalf("expected guard page fault, got %v", err)
	}
}

func TestProtectReadOnly(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.Store8(base, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Protect(base, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base); err != nil {
		t.Fatalf("read of read-only page failed: %v", err)
	}
	if err := s.Store8(base, 1); err == nil {
		t.Fatal("write to read-only page should fault")
	}
}

func TestUnmapThenAccessFaults(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	if err := s.Store8(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base); err == nil {
		t.Fatal("access after unmap should fault")
	}
	if s.Stats().PagesMapped != 0 {
		t.Fatalf("PagesMapped = %d after full unmap", s.Stats().PagesMapped)
	}
}

func TestUnmapErrors(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.Unmap(base+1, PageSize); err == nil {
		t.Fatal("unaligned unmap should fail")
	}
	if err := s.Unmap(base+4*PageSize, PageSize); err == nil {
		t.Fatal("unmap of unmapped range should fail")
	}
	// Partial overlap: nothing should be unmapped.
	if err := s.Unmap(base, 2*PageSize); err == nil {
		t.Fatal("unmap extending past mapping should fail")
	}
	if _, err := s.Load8(base); err != nil {
		t.Fatalf("failed unmap must not tear down pages: %v", err)
	}
}

func TestCrossPageAccesses(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	addr := base + PageSize - 3 // 64-bit value straddles the boundary
	if err := s.Store64(addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("cross-page round trip got %#x", v)
	}
	if err := s.Store32(base+PageSize-2, 0xaabbccdd); err != nil {
		t.Fatal(err)
	}
	v32, err := s.Load32(base + PageSize - 2)
	if err != nil {
		t.Fatal(err)
	}
	if v32 != 0xaabbccdd {
		t.Fatalf("cross-page 32-bit round trip got %#x", v32)
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(3*PageSize, ProtRW)
	msg := bytes.Repeat([]byte("abcdefgh"), 1000) // spans pages
	if err := s.WriteBytes(base+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.ReadBytes(base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("ReadBytes did not return what WriteBytes stored")
	}
}

func TestMemset(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	if err := s.Memset(base+10, 0xAB, 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if err := s.ReadBytes(base+10, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
}

func TestMemMoveOverlap(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.WriteBytes(base, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := s.MemMove(base+2, base, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	_ = s.ReadBytes(base, got)
	if string(got) != "0101234567" {
		t.Fatalf("overlapping MemMove got %q", got)
	}
}

func TestLazyInstantiation(t *testing.T) {
	s := NewSpace()
	// Reserve a large region; it should cost nothing until touched.
	base, err := s.Map(1<<20, ProtRW) // 256 pages
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().PagesDirty != 0 {
		t.Fatalf("untouched mapping instantiated %d pages", s.Stats().PagesDirty)
	}
	if err := s.Store8(base+5*PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().PagesDirty != 1 {
		t.Fatalf("one touch should dirty one page, got %d", s.Stats().PagesDirty)
	}
}

func TestFreshPagesAreZero(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	v, err := s.Load64(base + 128)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("fresh page contained %#x", v)
	}
}

func TestTLBSimulation(t *testing.T) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(256*PageSize, ProtRW)

	// Touch one page repeatedly: 1 miss, then hits.
	for i := 0; i < 100; i++ {
		if err := s.Store8(base, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.TLBMisses != 1 || st.TLBHits != 99 {
		t.Fatalf("expected 1 miss/99 hits, got %d/%d", st.TLBMisses, st.TLBHits)
	}

	// Touch more distinct pages than TLB entries (disjoint from the page
	// above): with FIFO replacement every revisit misses.
	before := st.TLBMisses
	for round := 0; round < 2; round++ {
		for p := 64; p < 192; p++ {
			if err := s.Store8(base+uint64(p)*PageSize, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	misses := s.Stats().TLBMisses - before
	if misses != 256 {
		t.Fatalf("FIFO TLB over 128 pages x2 rounds should miss every time, got %d/256", misses)
	}
}

func TestTLBLocalityBeatsSpread(t *testing.T) {
	// The mechanism behind the paper's 300.twolf observation: the same
	// number of accesses spread over many pages misses far more.
	dense := NewSpace()
	dense.EnableTLB()
	db, _ := dense.Map(512*PageSize, ProtRW)
	sparse := NewSpace()
	sparse.EnableTLB()
	sb, _ := sparse.Map(512*PageSize, ProtRW)

	for i := 0; i < 10000; i++ {
		_ = dense.Store8(db+uint64(i%(8*PageSize)), 1)                 // 8 pages
		_ = sparse.Store8(sb+uint64((i*PageSize+i)%(512*PageSize)), 1) // all pages
	}
	if dense.Stats().TLBMisses >= sparse.Stats().TLBMisses {
		t.Fatalf("dense (%d misses) should beat sparse (%d misses)",
			dense.Stats().TLBMisses, sparse.Stats().TLBMisses)
	}
}

func TestAccessCounters(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	_ = s.Store64(base, 1)
	_, _ = s.Load64(base)
	_ = s.Store8(base, 1)
	st := s.Stats()
	if st.Stores != 2 || st.Loads != 1 {
		t.Fatalf("counters loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.Accesses() != 3 {
		t.Fatalf("Accesses() = %d", st.Accesses())
	}
}

func TestPeakPages(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(4*PageSize, ProtRW)
	if err := s.Unmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Map(PageSize, ProtRW)
	if s.Stats().PagesPeak != 4 {
		t.Fatalf("peak = %d, want 4", s.Stats().PagesPeak)
	}
}

func TestMapRejectsBadSizes(t *testing.T) {
	s := NewSpace()
	if _, err := s.Map(0, ProtRW); err == nil {
		t.Fatal("Map(0) should fail")
	}
	if _, err := s.Map(-5, ProtRW); err == nil {
		t.Fatal("Map(-5) should fail")
	}
	if _, err := s.MapGuarded(0); err == nil {
		t.Fatal("MapGuarded(0) should fail")
	}
}

func TestQuickStoreLoadRoundTrip(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(16*PageSize, ProtRW)
	f := func(off uint16, v uint64) bool {
		addr := base + uint64(off)
		if err := s.Store64(addr, v); err != nil {
			return false
		}
		got, err := s.Load64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWriteReadBytes(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(64*PageSize, ProtRW)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := base + uint64(off)
		if err := s.WriteBytes(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadBytes(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore64(b *testing.B) {
	s := NewSpace()
	base, _ := s.Map(1<<20, ProtRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
	}
}

// BenchmarkLoad64Strided touches a different page on every access, the
// pattern of a randomized allocator: page-translation cost cannot hide
// behind single-page locality here.
func BenchmarkLoad64Strided(b *testing.B) {
	s := NewSpace()
	base, _ := s.Map(1024*PageSize, ProtRW)
	// Touch every page once so instantiation is off the clock.
	for p := 0; p < 1024; p++ {
		_ = s.Store64(base+uint64(p)*PageSize, uint64(p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Load64(base + uint64(i%1024)*PageSize + uint64(i%512)*8)
	}
}

// BenchmarkStore64Strided is the store-side page-per-access pattern.
func BenchmarkStore64Strided(b *testing.B) {
	s := NewSpace()
	base, _ := s.Map(1024*PageSize, ProtRW)
	for p := 0; p < 1024; p++ {
		_ = s.Store64(base+uint64(p)*PageSize, uint64(p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Store64(base+uint64(i%1024)*PageSize+uint64(i%512)*8, uint64(i))
	}
}

// BenchmarkReadBytesPage measures bulk throughput: one page per read.
func BenchmarkReadBytesPage(b *testing.B) {
	s := NewSpace()
	base, _ := s.Map(256*PageSize, ProtRW)
	buf := make([]byte, PageSize)
	_ = s.Memset(base, 0xEE, 256*PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ReadBytes(base+uint64(i%255)*PageSize+128, buf)
	}
}

func BenchmarkStore64TLB(b *testing.B) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(1<<20, ProtRW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
	}
}

func TestProtectMiddleOfMapping(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(6*PageSize, ProtRW)
	// Guard the middle two pages; the flanks stay writable.
	if err := s.Protect(base+2*PageSize, 2*PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 1); err != nil {
		t.Fatalf("left flank: %v", err)
	}
	if err := s.Store8(base+5*PageSize, 1); err != nil {
		t.Fatalf("right flank: %v", err)
	}
	if err := s.Store8(base+3*PageSize, 1); err == nil {
		t.Fatal("guarded middle should fault")
	}
	// Re-open the middle.
	if err := s.Protect(base+2*PageSize, 2*PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base+3*PageSize, 1); err != nil {
		t.Fatalf("reopened middle: %v", err)
	}
}

func TestUnmapMiddleOfMapping(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(5*PageSize, ProtRW)
	if err := s.Store8(base+2*PageSize, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base+2*PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base + 2*PageSize); err == nil {
		t.Fatal("unmapped middle page accessible")
	}
	if err := s.Store8(base+PageSize, 1); err != nil {
		t.Fatalf("page before hole: %v", err)
	}
	if err := s.Store8(base+3*PageSize, 1); err != nil {
		t.Fatalf("page after hole: %v", err)
	}
	if s.Stats().PagesMapped != 4 {
		t.Fatalf("PagesMapped = %d, want 4", s.Stats().PagesMapped)
	}
}

func TestPageFiller(t *testing.T) {
	s := NewSpace()
	n := byte(0)
	s.SetPageFiller(func(b []byte) {
		for i := range b {
			b[i] = 0xC0 | n&0xF
		}
		n++
	})
	base, _ := s.Map(4*PageSize, ProtRW)
	v, err := s.Load8(base + 2*PageSize + 17)
	if err != nil {
		t.Fatal(err)
	}
	if v&0xF0 != 0xC0 {
		t.Fatalf("filler not applied: %#x", v)
	}
	// The filler only runs on first instantiation: writes persist.
	if err := s.Store8(base, 0x11); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Load8(base)
	if got != 0x11 {
		t.Fatalf("write lost: %#x", got)
	}
	// Clearing the filler restores zero-fill for new pages.
	s.SetPageFiller(nil)
	base2, _ := s.Map(PageSize, ProtRW)
	got, _ = s.Load8(base2)
	if got != 0 {
		t.Fatalf("nil filler should zero-fill: %#x", got)
	}
}

func TestTLBSecondLevelCounters(t *testing.T) {
	s := NewSpace()
	s.EnableTLB()
	base, _ := s.Map(100*PageSize, ProtRW)
	// First pass over 100 pages: every access is a cold walk.
	for p := 0; p < 100; p++ {
		_ = s.Store8(base+uint64(p)*PageSize, 1)
	}
	st := s.Stats()
	if st.TLB2Misses != 100 || st.TLBMisses != 100 {
		t.Fatalf("cold pass: L1=%d L2=%d", st.TLBMisses, st.TLB2Misses)
	}
	// Second pass: 100 pages exceed the 64-entry L1 (all miss) but fit
	// the second level (no cold walks).
	for p := 0; p < 100; p++ {
		_ = s.Store8(base+uint64(p)*PageSize, 1)
	}
	st = s.Stats()
	if st.TLB2Misses != 100 {
		t.Fatalf("warm pass caused cold walks: %d", st.TLB2Misses)
	}
	if st.TLBMisses != 200 {
		t.Fatalf("warm pass should still miss L1: %d", st.TLBMisses)
	}
}

// --- Radix page-table edge cases: the semantics the rewrite must
// preserve (ISSUE 1 satellite tests) ---

func TestCrossPageStore32RoundTrip(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	for _, off := range []uint64{PageSize - 1, PageSize - 2, PageSize - 3} {
		addr := base + off
		if err := s.Store32(addr, 0x89abcdef); err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		v, err := s.Load32(addr)
		if err != nil {
			t.Fatalf("off %d: %v", off, err)
		}
		if v != 0x89abcdef {
			t.Fatalf("off %d: got %#x", off, v)
		}
	}
}

func TestCrossPageAccessIntoGuardFaults(t *testing.T) {
	s := NewSpace()
	base, err := s.MapGuarded(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// A 64-bit access starting 4 bytes before the trailing guard page
	// straddles into it and must fault.
	var f *Fault
	if _, err := s.Load64(base + PageSize - 4); !errors.As(err, &f) {
		t.Fatalf("cross-page load into guard: got %v", err)
	}
	if err := s.Store64(base+PageSize-4, 1); !errors.As(err, &f) {
		t.Fatalf("cross-page store into guard: got %v", err)
	}
	// The same access fully inside the region is fine.
	if _, err := s.Load64(base + PageSize - 8); err != nil {
		t.Fatal(err)
	}
}

func TestFaultExactlyAtGuardBoundaries(t *testing.T) {
	s := NewSpace()
	base, err := s.MapGuarded(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Last byte before the leading guard boundary / first byte of the
	// usable region / last usable byte / first byte of the trailing
	// guard.
	var f *Fault
	if err := s.Store8(base-1, 1); !errors.As(err, &f) || f.Reason != "guard page" {
		t.Fatalf("store at base-1: %v", err)
	}
	if err := s.Store8(base, 1); err != nil {
		t.Fatalf("store at base: %v", err)
	}
	if err := s.Store8(base+2*PageSize-1, 1); err != nil {
		t.Fatalf("store at last usable byte: %v", err)
	}
	if err := s.Store8(base+2*PageSize, 1); !errors.As(err, &f) || f.Reason != "guard page" {
		t.Fatalf("store at first guard byte: %v", err)
	}
}

func TestProtectVisibleThroughPageTable(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(PageSize, ProtRW)
	if err := s.Store64(base, 0x1234); err != nil {
		t.Fatal(err)
	}
	// Downgrade an already-instantiated page: the next access must see
	// the new protection (no stale translation).
	if err := s.Protect(base, PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 1); err == nil {
		t.Fatal("store through stale translation after Protect")
	}
	v, err := s.Load64(base)
	if err != nil || v != 0x1234 {
		t.Fatalf("read-only page lost data: %v %#x", err, v)
	}
	// Re-upgrade: data still there, stores work again.
	if err := s.Protect(base, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(base, 9); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapInvalidatesAndRecycledFramesAreZero(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(4*PageSize, ProtRW)
	if err := s.Memset(base, 0xAA, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load8(base); err == nil {
		t.Fatal("access through stale translation after Unmap")
	}
	// A new mapping that reuses the recycled frames must observe zeroed
	// memory, not the previous mapping's contents.
	b2, _ := s.Map(4*PageSize, ProtRW)
	for p := uint64(0); p < 4; p++ {
		v, err := s.Load64(b2 + p*PageSize + 64)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("recycled frame leaked old contents: %#x", v)
		}
	}
}

func TestFindByte(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(3*PageSize, ProtRW)
	// Pattern crossing a page boundary: target on the second page.
	if err := s.Memset(base, 'x', 2*PageSize); err != nil {
		t.Fatal(err)
	}
	target := base + PageSize + 123
	if err := s.Store8(target, 0); err != nil {
		t.Fatal(err)
	}
	idx, found, err := s.FindByte(base, 0, 3*PageSize)
	if err != nil || !found {
		t.Fatalf("FindByte: %v found=%v", err, found)
	}
	if uint64(idx) != target-base {
		t.Fatalf("idx = %d, want %d", idx, target-base)
	}
	// Limit smaller than the distance: not found, no error.
	if _, found, err := s.FindByte(base, 0, 10); err != nil || found {
		t.Fatalf("limited scan: %v found=%v", err, found)
	}
	// First byte matches.
	if idx, found, _ := s.FindByte(target, 0, 10); !found || idx != 0 {
		t.Fatalf("match at offset 0: idx=%d found=%v", idx, found)
	}
}

func TestFindByteFaultsLikeByteLoop(t *testing.T) {
	s := NewSpace()
	base, err := s.MapGuarded(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(base, 'x', PageSize); err != nil {
		t.Fatal(err)
	}
	// No terminator before the guard page: the scan must fault there,
	// exactly as a Load8 loop would.
	var f *Fault
	if _, _, err := s.FindByte(base, 0, 4*PageSize); !errors.As(err, &f) {
		t.Fatalf("unterminated scan: %v", err)
	}
	// With the match before the guard, the guard must not be touched.
	if err := s.Store8(base+PageSize-1, 0); err != nil {
		t.Fatal(err)
	}
	idx, found, err := s.FindByte(base, 0, 4*PageSize)
	if err != nil || !found || idx != PageSize-1 {
		t.Fatalf("match before guard: idx=%d found=%v err=%v", idx, found, err)
	}
}

func TestMemMoveDirectNonOverlapping(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(8*PageSize, ProtRW)
	msg := bytes.Repeat([]byte("0123456789abcdef"), 600) // 9600B, spans pages
	if err := s.WriteBytes(base+17, msg); err != nil {
		t.Fatal(err)
	}
	// Forward copy to a page-misaligned destination.
	dst := base + 4*PageSize + 913
	if err := s.MemMove(dst, base+17, len(msg)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.ReadBytes(dst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("direct copy to %#x corrupted data", dst)
	}
	// dst < src non-overlap.
	if err := s.MemMove(base+1000, dst, len(msg)); err != nil {
		t.Fatal(err)
	}
	_ = s.ReadBytes(base+1000, got)
	if !bytes.Equal(got, msg) {
		t.Fatal("backward-direction direct copy corrupted data")
	}
}

func TestMemMoveOverlapBothDirections(t *testing.T) {
	s := NewSpace()
	base, _ := s.Map(2*PageSize, ProtRW)
	seed := []byte("abcdefghij")
	// dst > src overlap.
	_ = s.WriteBytes(base, seed)
	if err := s.MemMove(base+3, base, 7); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	_ = s.ReadBytes(base, got)
	if string(got) != "abcabcdefg" {
		t.Fatalf("dst>src overlap got %q", got)
	}
	// dst < src overlap.
	_ = s.WriteBytes(base, seed)
	if err := s.MemMove(base, base+3, 7); err != nil {
		t.Fatal(err)
	}
	_ = s.ReadBytes(base, got)
	if string(got) != "defghijhij" {
		t.Fatalf("dst<src overlap got %q", got)
	}
}

func TestAccessHookChainsWithTLB(t *testing.T) {
	s := NewSpace()
	var hookPages []uint64
	s.AddAccessHook(func(pn uint64) { hookPages = append(hookPages, pn) })
	s.EnableTLB()
	base, _ := s.Map(2*PageSize, ProtRW)
	_ = s.Store8(base, 1)
	_ = s.Store8(base+PageSize, 1)
	_ = s.Store8(base, 1)
	if len(hookPages) != 3 {
		t.Fatalf("hook saw %d accesses, want 3", len(hookPages))
	}
	st := s.Stats()
	if st.TLBMisses != 2 || st.TLBHits != 1 {
		t.Fatalf("TLB alongside custom hook: misses=%d hits=%d", st.TLBMisses, st.TLBHits)
	}
}

func TestPageFillerInvocationCounts(t *testing.T) {
	s := NewSpace()
	calls := 0
	s.SetPageFiller(func(b []byte) {
		calls++
		for i := range b {
			b[i] = 0x5A
		}
	})
	base, _ := s.Map(8*PageSize, ProtRW)
	// Touching three distinct pages fires the filler exactly three
	// times; re-touching fires nothing.
	for _, p := range []uint64{0, 3, 7, 0, 3, 7} {
		if _, err := s.Load8(base + p*PageSize + 11); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("filler ran %d times, want 3", calls)
	}
	if s.Stats().PagesDirty != 3 {
		t.Fatalf("PagesDirty = %d, want 3", s.Stats().PagesDirty)
	}
	// A bulk write spanning two fresh pages fires it twice more.
	if err := s.Memset(base+4*PageSize, 1, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("filler ran %d times after bulk touch, want 5", calls)
	}
}
