package vmem

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// Concurrency tests for the lock-free access path and the serialized
// mapping operations (DESIGN.md §7). These are meaningful both as plain
// tests and, especially, under `go test -race`.

// TestConcurrentDisjointAccess drives loads and stores from many
// goroutines over disjoint page ranges of one space. Under StatsShared
// the access counters must come out exact.
func TestConcurrentDisjointAccess(t *testing.T) {
	const workers = 8
	const pagesPerWorker = 16
	const opsPerPage = 64

	s := NewSpace()
	s.SetStatsMode(StatsShared)
	base, err := s.Map(workers*pagesPerWorker*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := base + uint64(w*pagesPerWorker)*PageSize
			for p := 0; p < pagesPerWorker; p++ {
				for i := 0; i < opsPerPage; i++ {
					addr := start + uint64(p)*PageSize + uint64(i)*8
					want := uint64(w)<<32 | uint64(p)<<16 | uint64(i)
					if err := s.Store64(addr, want); err != nil {
						errs[w] = err
						return
					}
					got, err := s.Load64(addr)
					if err != nil {
						errs[w] = err
						return
					}
					if got != want {
						errs[w] = errors.New("read back wrong value")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	const perWorker = pagesPerWorker * opsPerPage
	if got, want := s.Stats().Loads, uint64(workers*perWorker); got != want {
		t.Errorf("Loads = %d, want exactly %d under StatsShared", got, want)
	}
	if got, want := s.Stats().Stores, uint64(workers*perWorker); got != want {
		t.Errorf("Stores = %d, want exactly %d under StatsShared", got, want)
	}
	if got, want := s.Stats().PagesDirty, uint64(workers*pagesPerWorker); got != want {
		t.Errorf("PagesDirty = %d, want %d", got, want)
	}
}

// TestMapVisibilityAcrossGoroutines checks the happens-before contract:
// a mapping (and a store through it) made by one goroutine is visible to
// another goroutine that learns the address afterwards, and an unmap is
// equally visible — the later access faults.
func TestMapVisibilityAcrossGoroutines(t *testing.T) {
	s := NewSpace()
	s.SetStatsMode(StatsShared)

	type handoff struct {
		base uint64
		n    int
	}
	mapped := make(chan handoff)
	unmapped := make(chan struct{})
	done := make(chan error, 1)

	go func() {
		const n = 4 * PageSize
		base, err := s.Map(n, ProtRW)
		if err != nil {
			done <- err
			return
		}
		if err := s.Store64(base+PageSize, 0xCAFEBABE); err != nil {
			done <- err
			return
		}
		mapped <- handoff{base, n}
		<-unmapped
		// The peer unmapped the range; our next access must fault.
		if _, err := s.Load64(base + PageSize); err == nil {
			done <- errors.New("load through unmapped range succeeded")
			return
		}
		done <- nil
	}()

	h := <-mapped
	v, err := s.Load64(h.base + PageSize)
	if err != nil {
		t.Fatalf("mapped page not visible across goroutines: %v", err)
	}
	if v != 0xCAFEBABE {
		t.Fatalf("stored value not visible across goroutines: %#x", v)
	}
	if err := s.Unmap(h.base, h.n); err != nil {
		t.Fatal(err)
	}
	close(unmapped)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFirstTouch races many goroutines into the lazy
// instantiation of the same fresh pages: each page's filler must run
// exactly once, every goroutine must observe filled (not zero) contents,
// and PagesDirty must count each page once.
func TestConcurrentFirstTouch(t *testing.T) {
	const pages = 32
	const workers = 8

	s := NewSpace()
	s.SetStatsMode(StatsShared)
	var fills atomic.Uint64
	s.SetPageFiller(func(b []byte) {
		fills.Add(1)
		for i := range b {
			b[i] = 0x5A
		}
	})
	base, err := s.Map(pages*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < pages; p++ {
				// Read a worker-specific offset in the filled page.
				b, err := s.Load8(base + uint64(p)*PageSize + uint64(64+w))
				if err != nil {
					errs[w] = err
					return
				}
				if b != 0x5A {
					errs[w] = errors.New("observed unfilled page contents")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := fills.Load(); got != pages {
		t.Errorf("filler ran %d times for %d pages", got, pages)
	}
	if got := s.Stats().PagesDirty; got != pages {
		t.Errorf("PagesDirty = %d, want %d", got, pages)
	}
}

// TestConcurrentMapUnmapChurn has goroutines concurrently map, use, and
// unmap their own regions while others do the same; mapping counters
// must balance at the end.
func TestConcurrentMapUnmapChurn(t *testing.T) {
	const workers = 6
	const rounds = 40

	s := NewSpace()
	s.SetStatsMode(StatsShared)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := (1 + (w+r)%4) * PageSize
				base, err := s.Map(n, ProtRW)
				if err != nil {
					errs[w] = err
					return
				}
				if err := s.Store64(base, uint64(w)); err != nil {
					errs[w] = err
					return
				}
				if v, err := s.Load64(base); err != nil || v != uint64(w) {
					errs[w] = errors.New("region not private to its mapper")
					return
				}
				if err := s.Unmap(base, n); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st := s.Stats()
	if st.PagesMapped != 0 {
		t.Errorf("PagesMapped = %d after balanced map/unmap churn", st.PagesMapped)
	}
	if st.PagesDirty != 0 {
		t.Errorf("PagesDirty = %d after all regions unmapped", st.PagesDirty)
	}
	if st.Faults != 0 {
		t.Errorf("unexpected faults: %d", st.Faults)
	}
}

// TestStatsOff checks the opt-out mode: accesses are uncounted, mapping
// counters still maintained.
func TestStatsOff(t *testing.T) {
	s := NewSpace()
	s.SetStatsMode(StatsOff)
	base, err := s.Map(2*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store64(base, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load64(base); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Loads != 0 || st.Stores != 0 {
		t.Errorf("StatsOff counted accesses: loads=%d stores=%d", st.Loads, st.Stores)
	}
	if st.PagesMapped != 2 || st.PagesDirty != 1 {
		t.Errorf("mapping counters wrong under StatsOff: %+v", *st)
	}
}

// TestStatsSharedDrain checks the striped shared-mode counters: counts
// accumulate in per-page cells and are folded into Stats on read, so
// interleaved Stats calls must never lose or double-count accesses.
func TestStatsSharedDrain(t *testing.T) {
	s := NewSpace()
	s.SetStatsMode(StatsShared)
	const pages = 3 * statsCells // several pages per cell
	base, err := s.Map(pages*PageSize, ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		if err := s.Store64(base+p*PageSize, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Stores; got != pages {
		t.Fatalf("Stores after first drain = %d, want %d", got, pages)
	}
	// A second drain with no intervening accesses must be a no-op.
	if got := s.Stats().Stores; got != pages {
		t.Fatalf("Stores after idempotent drain = %d, want %d", got, pages)
	}
	for p := uint64(0); p < pages; p++ {
		if _, err := s.Load64(base + p*PageSize); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Loads != pages || st.Stores != pages {
		t.Fatalf("after loads: loads=%d stores=%d, want %d each", st.Loads, st.Stores, pages)
	}
}
