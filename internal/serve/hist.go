package serve

import "diehard/internal/obs"

// Histogram is the shared fixed-bucket log-scale latency histogram,
// promoted to internal/obs (PR 9) so serve, heal, and the metrics
// registry all grade latency with one implementation. The alias keeps
// serve's exported surface (Result.Hist, worker histograms) source-
// compatible; semantics — including the exact-max high-quantile rule
// from PR 8 — are pinned by the TestObsHistogram* suite in obs.
type Histogram = obs.Histogram
