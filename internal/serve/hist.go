package serve

import "math/bits"

// Fixed-bucket log-scale latency histogram. Recording a sample is one
// bits.Len64 and one slice increment — no allocation, no locking (each
// worker owns a histogram and the driver merges them after the run), so
// the measurement cost cannot distort the tail it is measuring.
//
// Buckets are logarithmic with histSubBits bits of sub-bucket
// resolution: values below 2^histSubBits get exact buckets, and every
// power-of-two decade above splits into 2^histSubBits sub-buckets, so
// the relative quantization error is bounded by 2^-histSubBits
// (~6% at 4 bits) at every magnitude — tight enough to grade p50/p99/
// p999 in nanoseconds from microseconds to minutes with one fixed
// 8 KB counter array.

const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Histogram counts non-negative int64 samples (latencies in
// nanoseconds). The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	max    int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	mantissa := v >> uint(exp) // in [histSub, 2*histSub)
	return int(uint64(exp+1)*histSub + (mantissa - histSub))
}

// bucketLow is the smallest sample value mapping to bucket i.
func bucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub - 1
	return uint64(histSub+i%histSub) << uint(exp)
}

// Record adds one sample. Negative samples (a clock anomaly the
// monotonic reading should preclude) clamp to zero rather than
// corrupting a bucket index.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(uint64(ns))]++
	h.total++
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Max returns the largest recorded sample exactly (not quantized).
func (h *Histogram) Max() int64 { return h.max }

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Quantile returns the latency at quantile q in [0, 1] — the midpoint
// of the bucket holding the q-th sample, so the result is within one
// sub-bucket width of the true order statistic. An empty histogram
// returns 0; q=1 returns the exact max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	if rank == h.total-1 {
		// The rank-th order statistic IS the largest sample, which is
		// tracked exactly — on sparse runs (fewer than 1/(1-q) samples,
		// e.g. p999 of a short soak) every high quantile degenerates to
		// this case and the bucket midpoint would misreport it.
		return h.max
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			lo := bucketLow(i)
			hi := lo
			if i+1 < histBuckets {
				hi = bucketLow(i+1) - 1
			}
			mid := lo + (hi-lo)/2
			if int64(mid) > h.max {
				return h.max
			}
			return int64(mid)
		}
	}
	return h.max
}
