// Package serve soaks the concurrent allocator stack as a service:
// worker goroutines process simulated sessions — a burst of mallocs
// with a skewed size mix, a word-sized access to every object, and a
// split of local frees (through the worker's magazine) and cross-worker
// frees (handed to a neighbor and routed back through the sharded front
// door, synchronously or via the remote-free rings) — and every session
// is graded on its end-to-end malloc+access+free latency.
//
// Arrivals are open-loop (DESIGN.md §12): each worker draws Poisson
// inter-arrival gaps, optionally modulated by bursts, and a session's
// latency is measured from its scheduled arrival, not from when the
// worker got to it — so queueing delay under load shows up in the tail
// percentiles instead of silently stretching the run, the way a
// closed-loop harness would hide it. Rate = 0 degenerates to a
// closed-loop saturation soak (pure service time, maximum throughput).
//
// The harness may also inject DieHard-ignorable errors (double frees
// and wild frees) at a configured rate, so long soaks exercise the
// §4.3 ignore paths under full concurrency; the run fails if
// CheckInvariants finds anything wrong afterwards.
package serve

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/rng"
)

// FreeMode selects how cross-worker frees travel back to the heap.
type FreeMode int

const (
	// FreeSync routes cross-worker frees through ShardedHeap.Free: the
	// freeing worker CAS-clears the owner shard's bitmap itself.
	FreeSync FreeMode = iota
	// FreeRemote routes them through ShardedHeap.RemoteFree: the
	// freeing worker enqueues on the owner's remote-free ring and the
	// owner applies the clear at its next drain.
	FreeRemote
)

// Config parameterizes a soak. The zero value is not runnable: Sessions
// must be positive. Everything else defaults sensibly.
type Config struct {
	// Shards is the ShardedHeap width (default 4).
	Shards int
	// Workers is the number of session-serving goroutines (default
	// Shards). Each owns a magazine and a latency histogram.
	Workers int
	// HeapSize is the total heap across shards (default 32 MB/shard).
	HeapSize int
	// Seed fixes the randomized layout and the workload streams.
	Seed uint64
	// Sessions is the total session count across all workers.
	Sessions int64
	// SessionObjects is the number of objects a session allocates,
	// accesses, and frees (default 16).
	SessionObjects int
	// Rate is the total arrival rate in sessions/sec across all
	// workers — the long-run mean including burst mass, so bursts
	// clump arrivals without raising the offered load. 0 runs
	// closed-loop saturation (no pacing).
	Rate float64
	// BurstProb, with Rate > 0, is the per-draw probability that the
	// arrival process emits a burst of BurstLen back-to-back sessions
	// (zero gap) instead of one Poisson-spaced arrival.
	BurstProb float64
	// BurstLen is the burst size (default 32 when BurstProb > 0).
	BurstLen int
	// CrossFraction of each session's objects are freed by the next
	// worker instead of the allocating one (default 0.25).
	CrossFraction float64
	// FreeMode routes those cross-worker frees (default FreeSync).
	FreeMode FreeMode
	// ErrorRate is the per-session probability of injecting one double
	// free and one wild free through the cross-free path. On untagged
	// heaps both are DieHard-ignorable; on GenTags runs the double free
	// is rejected exactly (StaleFrees) and the wild free ignored exactly
	// (IgnoredFrees) — Result.DoubleFrees/WildFrees record the injected
	// ground truth the tests balance against.
	ErrorRate float64
	// GenTags runs the soak on a generation-tagged heap (DESIGN.md §15):
	// sessions allocate through the fat-pointer API — unbatched, since
	// magazines batch the thin protocol — local frees go through
	// ShardedHeap.FreeFat and cross-worker frees through FreeFat or
	// RemoteFreeFat per FreeMode, each carrying its tag to the owner's
	// gen-checked arbiter. Free accounting becomes exact: a double free
	// that straddles a reallocation is still caught. Mutually exclusive
	// with Faults (the token-verified fault soak is a thin-pointer
	// magazine workload).
	GenTags bool
	// Faults, when set, embeds a planned fault schedule in every
	// worker's session loop (the supervisor-facing soak of DESIGN.md
	// §13): object sizes become fixed so the per-object index is a
	// stable allocation site, session objects are token-verified at
	// free, and corrupted tokens are counted (Result.Corruptions) rather
	// than failing the run. Mutually exclusive with ErrorRate, whose
	// injected double frees would trip the verification.
	Faults *FaultPlan
	// Mitigate, when set with Faults, consults the supervisor's live
	// countermeasure table: per-object-index overallocation pads applied
	// at malloc and per-index free quarantine holding frees in a
	// worker-local delayed-reuse FIFO. heal.Mitigations implements it.
	Mitigate Mitigator
	// QuarantineDepth bounds each worker's held-free FIFO (default 32);
	// pushing past it frees the oldest held object. All held objects are
	// freed at worker teardown, so FullnessEnd still measures drift.
	QuarantineDepth int
	// Obs, when non-nil, receives the soak's slice of the unified
	// metrics tree: the shard aggregate and per-shard core.* gauges,
	// the vmem.* gauges of the shared address space, per-worker
	// serve.session_ns histograms, a serve.sessions counter, and — on
	// fault-scheduled runs — heal.corruptions / heal.quarantined_frees
	// counters. Registration happens before the first session, so the
	// tree can be scraped live while the soak runs.
	Obs *obs.Registry
	// Trace, when non-nil, attaches the flight recorder: worker i
	// emits on ring i (EvSession latencies, EvQuarantine holds,
	// EvFault injections) and its magazine traces refills/flushes
	// there; shard heaps ride rings 100+shard and the steal router
	// ring 100+Shards (core's malloc/free/drain/steal events). Nil
	// leaves every hot path at its single disabled-check branch.
	Trace *obs.Recorder
}

// Mitigator is the live countermeasure view a fault-scheduled soak
// consults: Pad is extra bytes to over-allocate for an object index,
// Quarantined whether its frees are diverted into delayed reuse.
// Implementations must be safe for concurrent use by all workers.
type Mitigator interface {
	Pad(site int) int
	Quarantined(site int) bool
}

// StaticMitigator returns a fixed Mitigator over the given pad and
// quarantine tables — the countermeasures a supervisor would have
// installed, applied from session one. Nil maps are empty tables.
// Useful for smoke gates and tests that need a mitigated soak without
// running the heal loop.
func StaticMitigator(pads map[int]int, quar map[int]bool) Mitigator {
	return staticMitigator{pads: pads, quar: quar}
}

type staticMitigator struct {
	pads map[int]int
	quar map[int]bool
}

func (m staticMitigator) Pad(site int) int          { return m.pads[site] }
func (m staticMitigator) Quarantined(site int) bool { return m.quar[site] }

// FaultPlan is a planned per-worker fault schedule, indexed by the
// object's position within a session — the identity that is stable
// across sessions, workers, and layouts. The injected writes simulate
// application bugs: they go straight to memory, bypassing the
// allocator, exactly as a buggy C program would.
type FaultPlan struct {
	// ObjectSize is the fixed request size for every session object
	// (default 48; faults need deterministic geometry).
	ObjectSize int
	// OverflowObject, when >= 0, writes OverflowReach bytes past its
	// requested end on every OverflowEvery-th session of each worker.
	OverflowObject int
	OverflowReach  int
	OverflowEvery  int64
	// DanglingObject, when >= 0, is freed during its session and written
	// through the stale pointer after the *next* session's allocations
	// have had a chance to recycle the slot.
	DanglingObject int
	DanglingEvery  int64
}

// Result is the grade sheet of one soak.
type Result struct {
	Sessions       int64
	Elapsed        time.Duration
	SessionsPerSec float64
	// P50/P99/P999 are session latencies in nanoseconds: scheduled
	// arrival to completion (malloc + access + free + queueing).
	P50, P99, P999 int64
	Hist           *Histogram
	// FullnessEnd is live objects over the aggregate 1/M threshold
	// after magazines closed and rings drained — the heap-fullness
	// drift from the empty start. A leak-free soak ends at 0.
	FullnessEnd float64
	Stats       heap.Stats
	// Corruptions counts session objects whose token failed verification
	// at free (Faults runs only); MTBFSessions is sessions per
	// corruption, the soak's mean-sessions-between-failures grade.
	// QuarantinedFrees counts frees the workers held in delayed-reuse
	// FIFOs on the Mitigator's orders.
	Corruptions      int64
	MTBFSessions     float64
	QuarantinedFrees int64
	// DoubleFrees and WildFrees count the ErrorRate injections actually
	// performed — the ground truth a GenTags soak balances exactly
	// against Stats.StaleFrees and Stats.IgnoredFrees.
	DoubleFrees int64
	WildFrees   int64
}

const crossBatch = 64

// shardRingBase is the flight-recorder worker-id convention: serve
// workers own rings 0..Workers-1, shard heap i rides ring
// shardRingBase+i, and the steal router ring shardRingBase+Shards —
// so a merged timeline attributes every event unambiguously. (The
// heal supervisor uses ring 200; see cmd/heal.)
const shardRingBase = 100

type worker struct {
	id    int
	sh    *core.ShardedHeap
	mag   *core.Magazine
	mem   heap.Memory
	r     *rng.MWC
	hist  Histogram
	mode  FreeMode
	inbox chan []heap.Ptr
	out   chan []heap.Ptr // the next worker's inbox
	cross []heap.Ptr      // outgoing batch under accumulation

	// Fat-pointer analogs of the cross-free plumbing (GenTags runs).
	inboxFat chan []heap.FatPtr
	outFat   chan []heap.FatPtr
	crossFat []heap.FatPtr
	doubles  int64 // ErrorRate double frees injected
	wilds    int64 // ErrorRate wild frees injected

	// Fault-schedule state (cfg.Faults runs only).
	sessionN    int64      // sessions served, the fault schedule's clock
	stale       heap.Ptr   // prematurely freed pointer awaiting its stale write
	held        []heap.Ptr // worker-local delayed-reuse FIFO (Mitigator quarantine)
	corruptions int64
	quarFrees   int64

	// Telemetry handles; all nil-safe, so the zero worker is silent.
	ring       *obs.Ring    // flight-recorder ring (worker id = w.id)
	ctrSess    *obs.Counter // serve.sessions
	ctrCorrupt *obs.Counter // heal.corruptions (Faults runs)
	ctrQuar    *obs.Counter // heal.quarantined_frees (Faults runs)
}

// skewedSize draws from the session size mix: mostly small objects,
// a medium band, and a thin large tail — four size classes apart, so
// cross-class contention and per-class magazine traffic both happen.
func skewedSize(r *rng.MWC) int {
	switch p := r.Intn(100); {
	case p < 55:
		return 16 + r.Intn(49) // 16–64 B
	case p < 85:
		return 128 + r.Intn(385) // 128–512 B
	case p < 97:
		return 1024 + r.Intn(1025) // 1–2 KB
	default:
		return 4096 + r.Intn(4097) // 4–8 KB
	}
}

// expGap draws a Poisson inter-arrival gap for the given per-worker
// rate (arrivals/sec).
func expGap(r *rng.MWC, rate float64) time.Duration {
	u := float64(r.Next64()>>11) / float64(uint64(1)<<53)
	if u <= 0 {
		u = 1.0 / float64(uint64(1)<<53)
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// freeBatch returns a batch of foreign pointers through the configured
// cross-free route.
func (w *worker) freeBatch(b []heap.Ptr) error {
	for _, p := range b {
		var err error
		if w.mode == FreeRemote {
			err = w.sh.RemoteFree(p)
		} else {
			err = w.sh.Free(p)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// sendCross hands the accumulated batch to the neighbor, or frees it
// locally if the neighbor's inbox is saturated — the handoff must never
// block, or two full inboxes would deadlock the ring of workers.
func (w *worker) sendCross() error {
	b := w.cross
	w.cross = make([]heap.Ptr, 0, crossBatch)
	select {
	case w.out <- b:
		return nil
	default:
		return w.freeBatch(b)
	}
}

// freeBatchFat is freeBatch for fat pointers: every free carries its
// generation to the owner's arbiter. A rejected free (a stale tag) is
// an expected outcome on error-injected runs, not a harness error — the
// stats balance asserts the exact count afterwards.
func (w *worker) freeBatchFat(b []heap.FatPtr) error {
	for _, fp := range b {
		var err error
		if w.mode == FreeRemote {
			_, err = w.sh.RemoteFreeFat(fp)
		} else {
			_, err = w.sh.FreeFat(fp)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// sendCrossFat is sendCross for fat pointers.
func (w *worker) sendCrossFat() error {
	b := w.crossFat
	w.crossFat = make([]heap.FatPtr, 0, crossBatch)
	select {
	case w.outFat <- b:
		return nil
	default:
		return w.freeBatchFat(b)
	}
}

// session serves one arrival: allocate, touch, and free a skewed mix of
// objects, draining any cross-freed batches that showed up meanwhile.
// With cfg.Faults, sizes are fixed (plus any Mitigator pad), the planned
// faults are injected, and every object's token is verified at free.
func (w *worker) session(cfg *Config, ptrs []heap.Ptr) error {
	n := cfg.SessionObjects
	fp := cfg.Faults
	ptrs = ptrs[:0]
	for i := 0; i < n; i++ {
		size := 0
		if fp != nil {
			size = fp.ObjectSize
			if cfg.Mitigate != nil {
				size += cfg.Mitigate.Pad(i)
			}
		} else {
			size = skewedSize(w.r)
		}
		p, err := w.mag.Malloc(size)
		if err != nil {
			return fmt.Errorf("worker %d malloc: %w", w.id, err)
		}
		// The access leg: every object is written and read back, so a
		// placement bug surfaces as a data mismatch, not just a stat.
		if err := w.mem.Store64(uint64(p), uint64(p)^0xd1e); err != nil {
			return fmt.Errorf("worker %d store: %w", w.id, err)
		}
		v, err := w.mem.Load64(uint64(p))
		if err != nil {
			return fmt.Errorf("worker %d load: %w", w.id, err)
		}
		if v != uint64(p)^0xd1e {
			return fmt.Errorf("worker %d: object %#x read back %#x", w.id, p, v)
		}
		ptrs = append(ptrs, p)
	}
	if fp != nil {
		w.sessionN++
		if w.stale != heap.Null {
			// The stale write lands a full allocation phase after the
			// premature free: the slot may belong to a fresh object now —
			// unless quarantine held it out of the probe stream. Write
			// errors are part of the fault, not of the harness.
			_ = w.mem.WriteBytes(uint64(w.stale), staleJunk[:])
			if w.ring != nil {
				w.ring.Emit(obs.EvFault, uint64(w.stale))
			}
			w.stale = heap.Null
		}
		if fp.OverflowObject >= 0 && fp.OverflowEvery > 0 && w.sessionN%fp.OverflowEvery == 0 {
			// Past the *requested* end: a pad enlarges the slot under the
			// object without changing where the buggy write lands.
			base := uint64(ptrs[fp.OverflowObject]) + uint64(fp.ObjectSize)
			junk := make([]byte, fp.OverflowReach)
			for i := range junk {
				junk[i] = 0xEE
			}
			_ = w.mem.WriteBytes(base, junk)
			if w.ring != nil {
				w.ring.Emit(obs.EvFault, base)
			}
		}
		if fp.DanglingObject >= 0 && fp.DanglingEvery > 0 && w.sessionN%fp.DanglingEvery == 0 {
			p := ptrs[fp.DanglingObject]
			w.stale = p
			ptrs[fp.DanglingObject] = heap.Null
			if err := w.freeFaulted(cfg, fp.DanglingObject, p); err != nil {
				return err
			}
		}
	}
	select {
	case b := <-w.inbox:
		if err := w.freeBatch(b); err != nil {
			return err
		}
	default:
	}
	if cfg.ErrorRate > 0 && float64(w.r.Intn(1<<20))/(1<<20) < cfg.ErrorRate {
		// One double free (the victim is freed again below — exactly
		// one of the two may win) and one wild interior free.
		victim := ptrs[w.r.Intn(len(ptrs))]
		if err := w.freeBatch([]heap.Ptr{victim, victim + 3}); err != nil {
			return err
		}
		w.doubles++
		w.wilds++
	}
	crossN := int(cfg.CrossFraction * float64(n))
	for i, p := range ptrs {
		if p == heap.Null {
			continue // prematurely freed by the fault schedule
		}
		if fp != nil {
			if err := w.freeFaulted(cfg, i, p); err != nil {
				return err
			}
			continue
		}
		if i < crossN {
			w.cross = append(w.cross, p)
			if len(w.cross) >= crossBatch {
				if err := w.sendCross(); err != nil {
					return err
				}
			}
			continue
		}
		if err := w.mag.Free(p); err != nil {
			return fmt.Errorf("worker %d free: %w", w.id, err)
		}
	}
	return nil
}

// sessionGen serves one arrival on a generation-tagged heap: the same
// allocate/touch/free shape as session, but every object travels as a
// fat pointer and every free carries its tag — so an ErrorRate double
// free is rejected exactly (the session's own later free of the victim
// becomes the stale replay) and a wild interior free is ignored
// exactly, whichever FreeMode routes them and whoever the slot belongs
// to by then.
func (w *worker) sessionGen(cfg *Config, fat []heap.FatPtr) error {
	n := cfg.SessionObjects
	fat = fat[:0]
	for i := 0; i < n; i++ {
		fp, err := w.sh.MallocFat(skewedSize(w.r))
		if err != nil {
			return fmt.Errorf("worker %d malloc: %w", w.id, err)
		}
		if err := w.mem.Store64(uint64(fp.Addr), uint64(fp.Addr)^0xd1e); err != nil {
			return fmt.Errorf("worker %d store: %w", w.id, err)
		}
		v, err := w.mem.Load64(uint64(fp.Addr))
		if err != nil {
			return fmt.Errorf("worker %d load: %w", w.id, err)
		}
		if v != uint64(fp.Addr)^0xd1e {
			return fmt.Errorf("worker %d: object %#x read back %#x", w.id, fp.Addr, v)
		}
		fat = append(fat, fp)
	}
	select {
	case b := <-w.inboxFat:
		if err := w.freeBatchFat(b); err != nil {
			return err
		}
	default:
	}
	if cfg.ErrorRate > 0 && float64(w.r.Intn(1<<20))/(1<<20) < cfg.ErrorRate {
		victim := fat[w.r.Intn(len(fat))]
		// The double's first free wins; the session's later free of the
		// victim replays a dead tag and must lose, even if the slot has
		// been reallocated by then. The wild free reuses the victim's
		// live tag on a misaligned interior address.
		if err := w.freeBatchFat([]heap.FatPtr{victim, {Addr: victim.Addr + 3, Gen: victim.Gen}}); err != nil {
			return err
		}
		w.doubles++
		w.wilds++
	}
	crossN := int(cfg.CrossFraction * float64(n))
	for i, fp := range fat {
		if i < crossN {
			w.crossFat = append(w.crossFat, fp)
			if len(w.crossFat) >= crossBatch {
				if err := w.sendCrossFat(); err != nil {
					return err
				}
			}
			continue
		}
		// Local frees are synchronous FreeFat — the gen-mode stand-in
		// for the magazine's local route.
		if _, err := w.sh.FreeFat(fp); err != nil {
			return fmt.Errorf("worker %d free: %w", w.id, err)
		}
	}
	return nil
}

// staleJunk is the byte pattern a stale write smears over a freed
// object's first word.
var staleJunk = [8]byte{0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD}

// freeFaulted retires one object of a fault-scheduled session: verify
// its token (a mismatch is a corruption — the invariant failure MTBF
// counts — never a run failure), then either free it or, when the
// Mitigator quarantines its index, push it onto the worker's delayed-
// reuse FIFO so the slot stays out of the probe stream.
func (w *worker) freeFaulted(cfg *Config, i int, p heap.Ptr) error {
	if v, err := w.mem.Load64(uint64(p)); err != nil || v != uint64(p)^0xd1e {
		w.corruptions++
		w.ctrCorrupt.Inc()
	}
	if cfg.Mitigate != nil && cfg.Mitigate.Quarantined(i) {
		w.quarFrees++
		w.ctrQuar.Inc()
		if w.ring != nil {
			w.ring.Emit(obs.EvQuarantine, uint64(p))
		}
		w.held = append(w.held, p)
		if len(w.held) > cfg.QuarantineDepth {
			oldest := w.held[0]
			w.held = w.held[1:]
			if err := w.mag.Free(oldest); err != nil {
				return fmt.Errorf("worker %d quarantine release: %w", w.id, err)
			}
		}
		return nil
	}
	if err := w.mag.Free(p); err != nil {
		return fmt.Errorf("worker %d free: %w", w.id, err)
	}
	return nil
}

// run is one worker's lifetime: the paced session loop, then (after
// every worker has stopped producing) a drain of the inbox and the
// magazine teardown.
func (w *worker) run(cfg *Config, quota int64, sessions *sync.WaitGroup, errOut *error, errMu *sync.Mutex) {
	fail := func(err error) {
		errMu.Lock()
		if *errOut == nil {
			*errOut = err
		}
		errMu.Unlock()
	}
	// Rate is the mean arrival rate including burst mass: a burst
	// emits BurstLen sessions per gap draw, so draws are spaced
	// burstFactor wider to keep the long-run mean at Rate — bursts
	// redistribute arrivals into clumps, they do not overload the run.
	burstFactor := 1.0
	if cfg.BurstProb > 0 {
		burstFactor = 1 + cfg.BurstProb*float64(cfg.BurstLen-1)
	}
	drawRate := cfg.Rate / float64(cfg.Workers) / burstFactor
	ptrs := make([]heap.Ptr, 0, cfg.SessionObjects)
	var fat []heap.FatPtr
	if cfg.GenTags {
		fat = make([]heap.FatPtr, 0, cfg.SessionObjects)
	}
	next := time.Now()
	burst := 0
	for s := int64(0); s < quota; s++ {
		arrival := time.Now()
		if cfg.Rate > 0 {
			if burst > 0 {
				burst--
			} else {
				if cfg.BurstProb > 0 && float64(w.r.Intn(1<<20))/(1<<20) < cfg.BurstProb {
					burst = cfg.BurstLen - 1
				}
				next = next.Add(expGap(w.r, drawRate))
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			arrival = next
		}
		var err error
		if cfg.GenTags {
			err = w.sessionGen(cfg, fat)
		} else {
			err = w.session(cfg, ptrs)
		}
		if err != nil {
			fail(err)
			break
		}
		lat := time.Since(arrival).Nanoseconds()
		w.hist.Record(lat)
		if w.ring != nil {
			w.ring.Emit(obs.EvSession, uint64(lat))
		}
		w.ctrSess.Inc()
	}
	if len(w.cross) > 0 {
		if err := w.sendCross(); err != nil {
			fail(err)
		}
	}
	if len(w.crossFat) > 0 {
		if err := w.sendCrossFat(); err != nil {
			fail(err)
		}
	}
	sessions.Done()
	// Producers may still be handing batches over; the inboxes are
	// closed by the driver once every worker has passed the barrier
	// above. (Only one of the two carries traffic; the other closes
	// empty.)
	for b := range w.inbox {
		if err := w.freeBatch(b); err != nil {
			fail(err)
		}
	}
	for b := range w.inboxFat {
		if err := w.freeBatchFat(b); err != nil {
			fail(err)
		}
	}
	// Release the delayed-reuse FIFO before the magazine closes, so
	// FullnessEnd measures drift, not quarantine inventory.
	for _, p := range w.held {
		if err := w.mag.Free(p); err != nil {
			fail(fmt.Errorf("worker %d teardown release: %w", w.id, err))
			break
		}
	}
	w.held = nil
	w.mag.Close()
}

func (cfg *Config) setDefaults() error {
	if cfg.Sessions <= 0 {
		return fmt.Errorf("serve: Sessions must be positive")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
	}
	if cfg.HeapSize <= 0 {
		cfg.HeapSize = cfg.Shards * 32 << 20
	}
	if cfg.SessionObjects <= 0 {
		cfg.SessionObjects = 16
	}
	if cfg.CrossFraction < 0 || cfg.CrossFraction > 1 {
		return fmt.Errorf("serve: CrossFraction %v outside [0, 1]", cfg.CrossFraction)
	}
	if cfg.CrossFraction == 0 {
		cfg.CrossFraction = 0.25
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.QuarantineDepth <= 0 {
		cfg.QuarantineDepth = 32
	}
	if cfg.Faults != nil {
		if cfg.ErrorRate > 0 {
			return fmt.Errorf("serve: Faults and ErrorRate are mutually exclusive (injected double frees would trip token verification)")
		}
		if cfg.GenTags {
			return fmt.Errorf("serve: Faults and GenTags are mutually exclusive (the fault soak is a thin-pointer magazine workload)")
		}
		f := *cfg.Faults // defaults must not mutate the caller's plan
		if f.ObjectSize == 0 {
			f.ObjectSize = 48
		}
		if f.ObjectSize < 8 || f.ObjectSize > core.MaxObjectSize {
			return fmt.Errorf("serve: FaultPlan.ObjectSize %d outside [8, %d]", f.ObjectSize, core.MaxObjectSize)
		}
		if f.OverflowObject >= cfg.SessionObjects || f.DanglingObject >= cfg.SessionObjects {
			return fmt.Errorf("serve: fault object index beyond SessionObjects %d", cfg.SessionObjects)
		}
		if f.OverflowObject >= 0 && (f.OverflowReach <= 0 || f.OverflowEvery <= 0) {
			return fmt.Errorf("serve: OverflowObject set but OverflowReach/OverflowEvery not positive")
		}
		if f.DanglingObject >= 0 && f.DanglingEvery <= 0 {
			return fmt.Errorf("serve: DanglingObject set but DanglingEvery not positive")
		}
		if f.OverflowObject >= 0 && f.OverflowObject == f.DanglingObject {
			return fmt.Errorf("serve: overflow and dangling faults share object %d", f.OverflowObject)
		}
		cfg.Faults = &f
	}
	return nil
}

// Run executes the soak and grades it. Any allocator error, data
// mismatch, or post-run CheckInvariants failure fails the run.
func Run(cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	sh, err := core.NewSharded(cfg.Shards, core.Options{
		HeapSize:   cfg.HeapSize,
		Seed:       cfg.Seed,
		Concurrent: true,
		RemoteRing: cfg.FreeMode == FreeRemote,
		GenTags:    cfg.GenTags,
	})
	if err != nil {
		return nil, err
	}

	// Telemetry wiring before the first session, so both surfaces can
	// be scraped live: shard heaps and the steal router ride rings
	// shardRingBase+i, workers ride rings 0..Workers-1, and the whole
	// stack publishes into one registry tree (all nil-safe — a nil
	// Obs/Trace costs one predictable branch per instrumented site).
	sh.AttachRecorder(cfg.Trace, shardRingBase)
	sh.PublishMetrics(cfg.Obs)
	sh.Mem().PublishMetrics(cfg.Obs)
	ctrSess := cfg.Obs.Counter("serve.sessions")
	var ctrCorrupt, ctrQuar *obs.Counter
	if cfg.Faults != nil {
		ctrCorrupt = cfg.Obs.Counter("heal.corruptions")
		ctrQuar = cfg.Obs.Counter("heal.quarantined_frees")
	}

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		mag, err := sh.NewMagazine()
		if err != nil {
			return nil, err
		}
		ring := cfg.Trace.Ring(i)
		mag.SetTrace(ring)
		workers[i] = &worker{
			id:         i,
			sh:         sh,
			mag:        mag,
			mem:        sh.Mem(),
			r:          rng.NewSeeded(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1),
			mode:       cfg.FreeMode,
			inbox:      make(chan []heap.Ptr, 8),
			cross:      make([]heap.Ptr, 0, crossBatch),
			inboxFat:   make(chan []heap.FatPtr, 8),
			crossFat:   make([]heap.FatPtr, 0, crossBatch),
			ring:       ring,
			ctrSess:    ctrSess,
			ctrCorrupt: ctrCorrupt,
			ctrQuar:    ctrQuar,
		}
		cfg.Obs.Histogram("serve.session_ns", &workers[i].hist,
			obs.Label{Name: "worker", Value: strconv.Itoa(i)})
	}
	for i, w := range workers {
		w.out = workers[(i+1)%len(workers)].inbox
		w.outFat = workers[(i+1)%len(workers)].inboxFat
	}

	var (
		sessions sync.WaitGroup
		all      sync.WaitGroup
		runErr   error
		errMu    sync.Mutex
	)
	per := cfg.Sessions / int64(cfg.Workers)
	start := time.Now()
	for i, w := range workers {
		quota := per
		if i == 0 {
			quota += cfg.Sessions % int64(cfg.Workers)
		}
		sessions.Add(1)
		all.Add(1)
		go func(w *worker, quota int64) {
			defer all.Done()
			w.run(&cfg, quota, &sessions, &runErr, &errMu)
		}(w, quota)
	}
	sessions.Wait()
	for _, w := range workers {
		close(w.inbox)
		close(w.inboxFat)
	}
	all.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}
	var doubles int64
	for _, w := range workers {
		doubles += w.doubles
	}
	if cfg.ErrorRate > 0 && !cfg.GenTags {
		// §12 caveat, priced exactly: on an untagged heap an injected
		// double free whose second half straddles a reallocation (or a
		// magazine pre-claim) is indistinguishable from a valid free, so
		// the aggregate Mallocs/Frees/LiveObjects ledger may skew by up
		// to one per injected double. Structural invariants take no
		// slack. GenTags closes this gap (DESIGN.md §15): tagged runs —
		// the else branch — use the exact barrier even under injection,
		// because the gens CAS rejects every straddling half as stale.
		if err := sh.CheckInvariantsSlack(uint64(doubles)); err != nil {
			return nil, fmt.Errorf("serve: post-soak invariant violation: %w", err)
		}
	} else if err := sh.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("serve: post-soak invariant violation: %w", err)
	}

	res := &Result{
		Sessions: cfg.Sessions,
		Elapsed:  elapsed,
		Hist:     &Histogram{},
		Stats:    sh.StatsSnapshot(),
	}
	for _, w := range workers {
		res.Hist.Merge(&w.hist)
		res.Corruptions += w.corruptions
		res.QuarantinedFrees += w.quarFrees
		res.DoubleFrees += w.doubles
		res.WildFrees += w.wilds
	}
	if cfg.Faults != nil {
		res.MTBFSessions = float64(cfg.Sessions) / float64(max(int64(1), res.Corruptions))
	}
	res.SessionsPerSec = float64(cfg.Sessions) / elapsed.Seconds()
	res.P50 = res.Hist.Quantile(0.50)
	res.P99 = res.Hist.Quantile(0.99)
	res.P999 = res.Hist.Quantile(0.999)
	var threshold uint64
	for s := 0; s < sh.Shards(); s++ {
		for c := 0; c < core.NumClasses; c++ {
			_, maxInUse := sh.Shard(s).ClassSlots(c)
			threshold += uint64(maxInUse)
		}
	}
	if threshold > 0 {
		res.FullnessEnd = float64(res.Stats.LiveObjects) / float64(threshold)
	}
	return res, nil
}
