package serve

import (
	"math"
	"sort"
	"testing"

	"diehard/internal/rng"
)

func TestHistogramBuckets(t *testing.T) {
	// Bucket boundaries are monotone and exhaustive: every value maps
	// into a bucket whose [low, next-low) range contains it.
	for _, v := range []uint64{0, 1, 15, 16, 17, 255, 256, 1 << 20, 1<<20 + 3, 1 << 40, math.MaxInt64} {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if lo := bucketLow(i); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", i, lo, v)
		}
		if i+1 < histBuckets {
			if hi := bucketLow(i + 1); v >= hi {
				t.Fatalf("value %d at bucket %d crosses next boundary %d", v, i, hi)
			}
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) < bucketLow(i-1) {
			t.Fatalf("bucket lows not monotone at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// Against an exact sorted sample: every quantile must land within
	// one sub-bucket's relative error of the true order statistic.
	r := rng.NewSeeded(7)
	var h Histogram
	samples := make([]int64, 20000)
	for i := range samples {
		v := int64(r.Intn(1_000_000)) + int64(r.Intn(1000))*int64(r.Intn(1000))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("max %d, want %d", h.Max(), samples[len(samples)-1])
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		got := h.Quantile(q)
		want := samples[int(q*float64(len(samples)))]
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 1.0/histSub+0.01 {
			t.Fatalf("q%.3f: got %d, want %d (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %d != max %d", h.Quantile(1), h.Max())
	}
	var a, b Histogram
	for i, v := range samples {
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != h.Count() || a.Max() != h.Max() || a.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("merge does not reproduce the unified histogram")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramEmptyMerge(t *testing.T) {
	// Merging histograms of workers that served nothing (a quota split
	// can starve trailing workers on tiny runs) must be an exact no-op.
	var a, b Histogram
	a.Merge(&b)
	if a.Count() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("empty-into-empty merge produced samples")
	}
	a.Record(100)
	a.Record(200)
	before := [3]int64{a.Quantile(0.5), a.Quantile(0.999), a.Max()}
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("count %d after empty merge, want 2", a.Count())
	}
	if after := [3]int64{a.Quantile(0.5), a.Quantile(0.999), a.Max()}; after != before {
		t.Fatalf("empty merge moved quantiles: %v -> %v", before, after)
	}
	// And the mirror: folding a populated histogram into a zero-value
	// one (the driver's merge loop starts from an empty Result.Hist).
	b.Merge(&a)
	if b.Count() != 2 || b.Max() != 200 {
		t.Fatalf("populated-into-empty merge lost samples: count %d max %d", b.Count(), b.Max())
	}
}

func TestHistogramTopOverflowBucket(t *testing.T) {
	// The largest representable samples land in the top buckets and are
	// counted, not dropped; the exact max survives quantization.
	var h Histogram
	huge := []int64{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 / 2, 1}
	for _, v := range huge {
		h.Record(v)
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("count %d, want %d", h.Count(), len(huge))
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("max %d, want MaxInt64", h.Max())
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("q1 = %d, want exact MaxInt64", got)
	}
	if got := h.Quantile(0.99); got != math.MaxInt64 {
		t.Fatalf("q.99 of 4 samples = %d, want the exact max (rank lands on the final sample)", got)
	}
	// A sum over the counters must see every recorded sample — the top
	// bucket is a real bucket, not an overflow discard.
	var sum uint64
	for _, c := range h.counts {
		sum += c
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count())
	}
}

func TestHistogramSparseHighQuantiles(t *testing.T) {
	// With fewer than 1/(1-q) samples the q-quantile IS the maximum;
	// the histogram must report it exactly (it tracks max un-quantized),
	// not as a log-bucket midpoint that can sit ~6% off.
	var h Histogram
	// 500 samples: p999 rank = floor(0.999*500) = 499 = the last sample.
	for i := int64(1); i <= 499; i++ {
		h.Record(i * 1000)
	}
	h.Record(123_456_789) // a max that is NOT a bucket boundary
	if got := h.Quantile(0.999); got != 123_456_789 {
		t.Fatalf("sparse p999 = %d, want exact max 123456789", got)
	}
	// Two samples: the p50 rank lands on the larger one — exact, again.
	var two Histogram
	two.Record(10)
	two.Record(999_999)
	if got := two.Quantile(0.5); got != 999_999 {
		t.Fatalf("two-sample p50 = %d, want exact 999999", got)
	}
	// Dense case unaffected: with 2000 samples p50 stays a bucket
	// estimate within the documented relative error.
	var dense Histogram
	for i := int64(1); i <= 2000; i++ {
		dense.Record(i)
	}
	got, want := dense.Quantile(0.5), int64(1000)
	if rel := math.Abs(float64(got-want)) / float64(want); rel > 1.0/histSub+0.01 {
		t.Fatalf("dense p50 = %d, want ~%d", got, want)
	}
}

// soak runs a small configured soak and applies the common grade:
// completion, zero leftover fullness, sane percentile ordering.
func soak(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != cfg.Sessions {
		t.Fatalf("served %d sessions, want %d", res.Sessions, cfg.Sessions)
	}
	if got := res.Hist.Count(); got != uint64(cfg.Sessions) {
		t.Fatalf("histogram holds %d samples, want %d", got, cfg.Sessions)
	}
	if cfg.ErrorRate == 0 && res.FullnessEnd != 0 {
		// Only assertable on clean soaks: an injected double free that
		// straddles a reallocation is indistinguishable from a valid
		// free (here as in the paper's allocator) and can skew the
		// app-level live count by one either way. CheckInvariants
		// (inside Run) is exact in both cases.
		t.Fatalf("soak leaked: end fullness %v (live %d)", res.FullnessEnd, res.Stats.LiveObjects)
	}
	if res.P50 > res.P99 || res.P99 > res.P999 || res.P999 > res.Hist.Max() {
		t.Fatalf("percentiles not monotone: p50=%d p99=%d p999=%d max=%d",
			res.P50, res.P99, res.P999, res.Hist.Max())
	}
	if res.SessionsPerSec <= 0 {
		t.Fatalf("throughput %v", res.SessionsPerSec)
	}
	return res
}

func TestServeSaturationSync(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     11,
		FreeMode: FreeSync,
	})
	if res.Stats.RemoteFrees != 0 {
		t.Fatalf("sync mode used the remote ring: %d", res.Stats.RemoteFrees)
	}
	if res.Stats.IgnoredFrees != 0 {
		t.Fatalf("clean soak ignored %d frees", res.Stats.IgnoredFrees)
	}
}

func TestServeSaturationRemote(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     12,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("remote mode never used the ring")
	}
}

func TestServeInjectedErrorsStayIgnorable(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   4,
		Sessions:  6000,
		Seed:      13,
		FreeMode:  FreeRemote,
		ErrorRate: 0.25,
	})
	// Each injection is one double free and one wild free; both must
	// surface as §4.3 ignores, never as corruption (soak already
	// checked invariants and leak-freedom).
	if res.Stats.IgnoredFrees == 0 {
		t.Fatal("error injection produced no ignored frees")
	}
}

func TestServeOpenLoopPoissonBursty(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   2,
		Sessions:  2000,
		Seed:      14,
		Rate:      200_000, // fast enough that the test stays sub-second
		BurstProb: 0.05,
		BurstLen:  16,
		FreeMode:  FreeRemote,
	})
	// Open-loop latency includes queueing delay from the scheduled
	// arrival; it can only exceed pure service time.
	if res.P999 < res.P50 {
		t.Fatalf("open-loop tail %d below median %d", res.P999, res.P50)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero Sessions accepted")
	}
	if _, err := Run(Config{Sessions: 1, CrossFraction: 1.5}); err == nil {
		t.Fatal("CrossFraction > 1 accepted")
	}
	plan := func() *FaultPlan {
		return &FaultPlan{OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
			DanglingObject: 9, DanglingEvery: 2}
	}
	if _, err := Run(Config{Sessions: 1, Faults: plan(), ErrorRate: 0.1}); err == nil {
		t.Fatal("Faults + ErrorRate accepted")
	}
	bad := []func(*FaultPlan){
		func(f *FaultPlan) { f.ObjectSize = 4 },
		func(f *FaultPlan) { f.OverflowObject = 16 }, // beyond SessionObjects
		func(f *FaultPlan) { f.OverflowReach = 0 },
		func(f *FaultPlan) { f.DanglingEvery = 0 },
		func(f *FaultPlan) { f.DanglingObject = 3 }, // collides with overflow
	}
	for i, mutate := range bad {
		f := plan()
		mutate(f)
		if _, err := Run(Config{Sessions: 1, Faults: f}); err == nil {
			t.Fatalf("case %d: invalid FaultPlan accepted", i)
		}
	}
}

// staticMit is a fixed Mitigator for tests: the countermeasures a
// supervisor would have installed, applied from session one.
type staticMit struct {
	pads map[int]int
	quar map[int]bool
}

func (m staticMit) Pad(site int) int          { return m.pads[site] }
func (m staticMit) Quarantined(site int) bool { return m.quar[site] }

// TestServeFaultScheduleMTBF embeds the planned fault schedule in the
// soak and grades the mitigated run against the unmitigated baseline on
// MTBF-in-sessions. Workers=1: the injected overflow/stale writes are
// genuine data races against any concurrent slot owner by design, so
// the multi-worker story lives in the metadata-level race battery
// (internal/heal), not here.
func TestServeFaultScheduleMTBF(t *testing.T) {
	plan := &FaultPlan{
		OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
		DanglingObject: 9, DanglingEvery: 2,
	}
	cfg := Config{
		Shards:   1,
		Workers:  1,
		HeapSize: 1 << 20,
		Sessions: 2000,
		Seed:     21,
		Faults:   plan,
	}
	base := soak(t, cfg)
	if base.Corruptions < 5 {
		t.Fatalf("unmitigated schedule produced only %d corruptions; faults are not biting", base.Corruptions)
	}
	if want := float64(cfg.Sessions) / float64(base.Corruptions); base.MTBFSessions != want {
		t.Fatalf("MTBFSessions = %v, want %v", base.MTBFSessions, want)
	}
	if base.QuarantinedFrees != 0 {
		t.Fatalf("no Mitigator, yet %d frees quarantined", base.QuarantinedFrees)
	}

	cfg.Mitigate = staticMit{
		pads: map[int]int{plan.OverflowObject: plan.OverflowReach + 8},
		quar: map[int]bool{plan.DanglingObject: true},
	}
	healed := soak(t, cfg)
	if healed.Corruptions != 0 {
		t.Errorf("mitigated run still corrupted %d tokens", healed.Corruptions)
	}
	if healed.QuarantinedFrees == 0 {
		t.Error("quarantine never held a free despite the Mitigator's orders")
	}
	if healed.MTBFSessions < 5*base.MTBFSessions {
		t.Errorf("mitigated MTBF %v < 5x baseline %v", healed.MTBFSessions, base.MTBFSessions)
	}
	t.Logf("MTBF sessions: unmitigated %.1f (%d corruptions) -> mitigated %.1f (%d corruptions, %d held frees)",
		base.MTBFSessions, base.Corruptions, healed.MTBFSessions, healed.Corruptions, healed.QuarantinedFrees)
}

func TestServeMillionSessionSoak(t *testing.T) {
	// The acceptance soak: a million-session closed-loop run across
	// both free modes' heaps would take minutes under -race, so it is
	// skipped in -short (CI runs the seconds-long smoke via cmd/serve
	// instead).
	if testing.Short() {
		t.Skip("million-session soak skipped in -short")
	}
	res := soak(t, Config{
		Shards:   4,
		Workers:  8,
		Sessions: 1_000_000,
		Seed:     15,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("soak never exercised the remote ring")
	}
	t.Logf("1M sessions in %v: %.0f sessions/s, p50=%dns p99=%dns p999=%dns, %d remote frees over %d drains, %d CAS retries",
		res.Elapsed, res.SessionsPerSec, res.P50, res.P99, res.P999,
		res.Stats.RemoteFrees, res.Stats.RemoteDrains, res.Stats.CASRetries)
}
