package serve

import (
	"math"
	"sort"
	"testing"

	"diehard/internal/rng"
)

func TestHistogramBuckets(t *testing.T) {
	// Bucket boundaries are monotone and exhaustive: every value maps
	// into a bucket whose [low, next-low) range contains it.
	for _, v := range []uint64{0, 1, 15, 16, 17, 255, 256, 1 << 20, 1<<20 + 3, 1 << 40, math.MaxInt64} {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if lo := bucketLow(i); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", i, lo, v)
		}
		if i+1 < histBuckets {
			if hi := bucketLow(i + 1); v >= hi {
				t.Fatalf("value %d at bucket %d crosses next boundary %d", v, i, hi)
			}
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) < bucketLow(i-1) {
			t.Fatalf("bucket lows not monotone at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// Against an exact sorted sample: every quantile must land within
	// one sub-bucket's relative error of the true order statistic.
	r := rng.NewSeeded(7)
	var h Histogram
	samples := make([]int64, 20000)
	for i := range samples {
		v := int64(r.Intn(1_000_000)) + int64(r.Intn(1000))*int64(r.Intn(1000))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("max %d, want %d", h.Max(), samples[len(samples)-1])
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		got := h.Quantile(q)
		want := samples[int(q*float64(len(samples)))]
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 1.0/histSub+0.01 {
			t.Fatalf("q%.3f: got %d, want %d (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %d != max %d", h.Quantile(1), h.Max())
	}
	var a, b Histogram
	for i, v := range samples {
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != h.Count() || a.Max() != h.Max() || a.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("merge does not reproduce the unified histogram")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

// soak runs a small configured soak and applies the common grade:
// completion, zero leftover fullness, sane percentile ordering.
func soak(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != cfg.Sessions {
		t.Fatalf("served %d sessions, want %d", res.Sessions, cfg.Sessions)
	}
	if got := res.Hist.Count(); got != uint64(cfg.Sessions) {
		t.Fatalf("histogram holds %d samples, want %d", got, cfg.Sessions)
	}
	if cfg.ErrorRate == 0 && res.FullnessEnd != 0 {
		// Only assertable on clean soaks: an injected double free that
		// straddles a reallocation is indistinguishable from a valid
		// free (here as in the paper's allocator) and can skew the
		// app-level live count by one either way. CheckInvariants
		// (inside Run) is exact in both cases.
		t.Fatalf("soak leaked: end fullness %v (live %d)", res.FullnessEnd, res.Stats.LiveObjects)
	}
	if res.P50 > res.P99 || res.P99 > res.P999 || res.P999 > res.Hist.Max() {
		t.Fatalf("percentiles not monotone: p50=%d p99=%d p999=%d max=%d",
			res.P50, res.P99, res.P999, res.Hist.Max())
	}
	if res.SessionsPerSec <= 0 {
		t.Fatalf("throughput %v", res.SessionsPerSec)
	}
	return res
}

func TestServeSaturationSync(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     11,
		FreeMode: FreeSync,
	})
	if res.Stats.RemoteFrees != 0 {
		t.Fatalf("sync mode used the remote ring: %d", res.Stats.RemoteFrees)
	}
	if res.Stats.IgnoredFrees != 0 {
		t.Fatalf("clean soak ignored %d frees", res.Stats.IgnoredFrees)
	}
}

func TestServeSaturationRemote(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     12,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("remote mode never used the ring")
	}
}

func TestServeInjectedErrorsStayIgnorable(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   4,
		Sessions:  6000,
		Seed:      13,
		FreeMode:  FreeRemote,
		ErrorRate: 0.25,
	})
	// Each injection is one double free and one wild free; both must
	// surface as §4.3 ignores, never as corruption (soak already
	// checked invariants and leak-freedom).
	if res.Stats.IgnoredFrees == 0 {
		t.Fatal("error injection produced no ignored frees")
	}
}

func TestServeOpenLoopPoissonBursty(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   2,
		Sessions:  2000,
		Seed:      14,
		Rate:      200_000, // fast enough that the test stays sub-second
		BurstProb: 0.05,
		BurstLen:  16,
		FreeMode:  FreeRemote,
	})
	// Open-loop latency includes queueing delay from the scheduled
	// arrival; it can only exceed pure service time.
	if res.P999 < res.P50 {
		t.Fatalf("open-loop tail %d below median %d", res.P999, res.P50)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero Sessions accepted")
	}
	if _, err := Run(Config{Sessions: 1, CrossFraction: 1.5}); err == nil {
		t.Fatal("CrossFraction > 1 accepted")
	}
}

func TestServeMillionSessionSoak(t *testing.T) {
	// The acceptance soak: a million-session closed-loop run across
	// both free modes' heaps would take minutes under -race, so it is
	// skipped in -short (CI runs the seconds-long smoke via cmd/serve
	// instead).
	if testing.Short() {
		t.Skip("million-session soak skipped in -short")
	}
	res := soak(t, Config{
		Shards:   4,
		Workers:  8,
		Sessions: 1_000_000,
		Seed:     15,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("soak never exercised the remote ring")
	}
	t.Logf("1M sessions in %v: %.0f sessions/s, p50=%dns p99=%dns p999=%dns, %d remote frees over %d drains, %d CAS retries",
		res.Elapsed, res.SessionsPerSec, res.P50, res.P99, res.P999,
		res.Stats.RemoteFrees, res.Stats.RemoteDrains, res.Stats.CASRetries)
}
