package serve

import (
	"testing"

	"diehard/internal/obs"
)

// soak runs a small configured soak and applies the common grade:
// completion, zero leftover fullness, sane percentile ordering.
func soak(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != cfg.Sessions {
		t.Fatalf("served %d sessions, want %d", res.Sessions, cfg.Sessions)
	}
	if got := res.Hist.Count(); got != uint64(cfg.Sessions) {
		t.Fatalf("histogram holds %d samples, want %d", got, cfg.Sessions)
	}
	if (cfg.ErrorRate == 0 || cfg.GenTags) && res.FullnessEnd != 0 {
		// On UNTAGGED error-injected soaks this is not assertable: an
		// injected double free that straddles a reallocation is
		// indistinguishable from a valid free (here as in the paper's
		// allocator, the §12 caveat) and can skew the app-level live
		// count by one either way. Generation tags close exactly that
		// gap (DESIGN.md §15), so GenTags soaks assert zero drift
		// unconditionally — TestServeGenTagErrorInjectionExact is the
		// exact-accounting companion. CheckInvariants (inside Run) is
		// exact in all cases.
		t.Fatalf("soak leaked: end fullness %v (live %d)", res.FullnessEnd, res.Stats.LiveObjects)
	}
	if res.P50 > res.P99 || res.P99 > res.P999 || res.P999 > res.Hist.Max() {
		t.Fatalf("percentiles not monotone: p50=%d p99=%d p999=%d max=%d",
			res.P50, res.P99, res.P999, res.Hist.Max())
	}
	if res.SessionsPerSec <= 0 {
		t.Fatalf("throughput %v", res.SessionsPerSec)
	}
	return res
}

func TestServeSaturationSync(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     11,
		FreeMode: FreeSync,
	})
	if res.Stats.RemoteFrees != 0 {
		t.Fatalf("sync mode used the remote ring: %d", res.Stats.RemoteFrees)
	}
	if res.Stats.IgnoredFrees != 0 {
		t.Fatalf("clean soak ignored %d frees", res.Stats.IgnoredFrees)
	}
}

func TestServeSaturationRemote(t *testing.T) {
	res := soak(t, Config{
		Shards:   4,
		Workers:  4,
		Sessions: 8000,
		Seed:     12,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("remote mode never used the ring")
	}
}

func TestServeInjectedErrorsStayIgnorable(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   4,
		Sessions:  6000,
		Seed:      13,
		FreeMode:  FreeRemote,
		ErrorRate: 0.25,
	})
	// Each injection is one double free and one wild free; both must
	// surface as §4.3 ignores, never as corruption (soak already
	// checked invariants and leak-freedom).
	if res.Stats.IgnoredFrees == 0 {
		t.Fatal("error injection produced no ignored frees")
	}
}

// TestServeGenTagClean soaks the generation-tagged service path in both
// free modes: no injections, so every tag check passes and the exact
// counters all end at zero.
func TestServeGenTagClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode FreeMode
	}{{"sync", FreeSync}, {"remote", FreeRemote}} {
		t.Run(tc.name, func(t *testing.T) {
			res := soak(t, Config{
				Shards:   2,
				Workers:  4,
				Sessions: 4000,
				Seed:     17,
				FreeMode: tc.mode,
				GenTags:  true,
			})
			if res.Stats.StaleFrees != 0 || res.Stats.IgnoredFrees != 0 {
				t.Fatalf("clean gen soak: StaleFrees=%d IgnoredFrees=%d, want 0/0",
					res.Stats.StaleFrees, res.Stats.IgnoredFrees)
			}
			if res.Stats.LiveObjects != 0 {
				t.Fatalf("clean gen soak left %d live objects", res.Stats.LiveObjects)
			}
			if tc.mode == FreeRemote && res.Stats.RemoteFrees == 0 {
				t.Fatal("remote gen soak never used the ring")
			}
		})
	}
}

// TestServeGenTagErrorInjectionExact is the satellite-2 exactness
// claim: on a generation-tagged heap every injected double free is
// rejected as a stale free and every injected wild free ignored —
// counter for counter against the recorded ground truth, with no ±1
// straddling-reallocation tolerance, in both free-routing modes.
func TestServeGenTagErrorInjectionExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode FreeMode
	}{{"sync", FreeSync}, {"remote", FreeRemote}} {
		t.Run(tc.name, func(t *testing.T) {
			res := soak(t, Config{
				Shards:    2,
				Workers:   4,
				Sessions:  6000,
				Seed:      19,
				FreeMode:  tc.mode,
				GenTags:   true,
				ErrorRate: 0.25,
			})
			if res.DoubleFrees == 0 || res.WildFrees == 0 {
				t.Fatalf("injection never fired (doubles=%d wilds=%d)", res.DoubleFrees, res.WildFrees)
			}
			if res.Stats.StaleFrees != uint64(res.DoubleFrees) {
				t.Fatalf("StaleFrees=%d, injected doubles=%d — gen-checked rejection must be exact",
					res.Stats.StaleFrees, res.DoubleFrees)
			}
			if res.Stats.IgnoredFrees != uint64(res.WildFrees) {
				t.Fatalf("IgnoredFrees=%d, injected wilds=%d — wild-free accounting must be exact",
					res.Stats.IgnoredFrees, res.WildFrees)
			}
			if res.Stats.LiveObjects != 0 {
				t.Fatalf("gen soak with injections left %d live objects; the double's victim must be freed exactly once",
					res.Stats.LiveObjects)
			}
		})
	}
}

func TestServeOpenLoopPoissonBursty(t *testing.T) {
	res := soak(t, Config{
		Shards:    2,
		Workers:   2,
		Sessions:  2000,
		Seed:      14,
		Rate:      200_000, // fast enough that the test stays sub-second
		BurstProb: 0.05,
		BurstLen:  16,
		FreeMode:  FreeRemote,
	})
	// Open-loop latency includes queueing delay from the scheduled
	// arrival; it can only exceed pure service time.
	if res.P999 < res.P50 {
		t.Fatalf("open-loop tail %d below median %d", res.P999, res.P50)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero Sessions accepted")
	}
	if _, err := Run(Config{Sessions: 1, CrossFraction: 1.5}); err == nil {
		t.Fatal("CrossFraction > 1 accepted")
	}
	plan := func() *FaultPlan {
		return &FaultPlan{OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
			DanglingObject: 9, DanglingEvery: 2}
	}
	if _, err := Run(Config{Sessions: 1, Faults: plan(), ErrorRate: 0.1}); err == nil {
		t.Fatal("Faults + ErrorRate accepted")
	}
	if _, err := Run(Config{Sessions: 1, Faults: plan(), GenTags: true}); err == nil {
		t.Fatal("Faults + GenTags accepted")
	}
	bad := []func(*FaultPlan){
		func(f *FaultPlan) { f.ObjectSize = 4 },
		func(f *FaultPlan) { f.OverflowObject = 16 }, // beyond SessionObjects
		func(f *FaultPlan) { f.OverflowReach = 0 },
		func(f *FaultPlan) { f.DanglingEvery = 0 },
		func(f *FaultPlan) { f.DanglingObject = 3 }, // collides with overflow
	}
	for i, mutate := range bad {
		f := plan()
		mutate(f)
		if _, err := Run(Config{Sessions: 1, Faults: f}); err == nil {
			t.Fatalf("case %d: invalid FaultPlan accepted", i)
		}
	}
}

// staticMit is a fixed Mitigator for tests: the countermeasures a
// supervisor would have installed, applied from session one.
type staticMit struct {
	pads map[int]int
	quar map[int]bool
}

func (m staticMit) Pad(site int) int          { return m.pads[site] }
func (m staticMit) Quarantined(site int) bool { return m.quar[site] }

// TestServeFaultScheduleMTBF embeds the planned fault schedule in the
// soak and grades the mitigated run against the unmitigated baseline on
// MTBF-in-sessions. Workers=1: the injected overflow/stale writes are
// genuine data races against any concurrent slot owner by design, so
// the multi-worker story lives in the metadata-level race battery
// (internal/heal), not here.
func TestServeFaultScheduleMTBF(t *testing.T) {
	plan := &FaultPlan{
		OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
		DanglingObject: 9, DanglingEvery: 2,
	}
	cfg := Config{
		Shards:   1,
		Workers:  1,
		HeapSize: 1 << 20,
		Sessions: 2000,
		Seed:     21,
		Faults:   plan,
	}
	base := soak(t, cfg)
	if base.Corruptions < 5 {
		t.Fatalf("unmitigated schedule produced only %d corruptions; faults are not biting", base.Corruptions)
	}
	if want := float64(cfg.Sessions) / float64(base.Corruptions); base.MTBFSessions != want {
		t.Fatalf("MTBFSessions = %v, want %v", base.MTBFSessions, want)
	}
	if base.QuarantinedFrees != 0 {
		t.Fatalf("no Mitigator, yet %d frees quarantined", base.QuarantinedFrees)
	}

	cfg.Mitigate = staticMit{
		pads: map[int]int{plan.OverflowObject: plan.OverflowReach + 8},
		quar: map[int]bool{plan.DanglingObject: true},
	}
	healed := soak(t, cfg)
	if healed.Corruptions != 0 {
		t.Errorf("mitigated run still corrupted %d tokens", healed.Corruptions)
	}
	if healed.QuarantinedFrees == 0 {
		t.Error("quarantine never held a free despite the Mitigator's orders")
	}
	if healed.MTBFSessions < 5*base.MTBFSessions {
		t.Errorf("mitigated MTBF %v < 5x baseline %v", healed.MTBFSessions, base.MTBFSessions)
	}
	t.Logf("MTBF sessions: unmitigated %.1f (%d corruptions) -> mitigated %.1f (%d corruptions, %d held frees)",
		base.MTBFSessions, base.Corruptions, healed.MTBFSessions, healed.Corruptions, healed.QuarantinedFrees)
}

func TestServeMillionSessionSoak(t *testing.T) {
	// The acceptance soak: a million-session closed-loop run across
	// both free modes' heaps would take minutes under -race, so it is
	// skipped in -short (CI runs the seconds-long smoke via cmd/serve
	// instead).
	if testing.Short() {
		t.Skip("million-session soak skipped in -short")
	}
	res := soak(t, Config{
		Shards:   4,
		Workers:  8,
		Sessions: 1_000_000,
		Seed:     15,
		FreeMode: FreeRemote,
	})
	if res.Stats.RemoteFrees == 0 {
		t.Fatal("soak never exercised the remote ring")
	}
	t.Logf("1M sessions in %v: %.0f sessions/s, p50=%dns p99=%dns p999=%dns, %d remote frees over %d drains, %d CAS retries",
		res.Elapsed, res.SessionsPerSec, res.P50, res.P99, res.P999,
		res.Stats.RemoteFrees, res.Stats.RemoteDrains, res.Stats.CASRetries)
}

// TestObsServeSoakTelemetry runs a mitigated fault-scheduled soak with
// the full telemetry plane attached and asserts the acceptance shape:
// the registry holds live metrics from at least four layers (vmem,
// core, serve, heal) and the flight recorder's merged timeline is
// non-empty, stamp-ordered, and spans both worker and shard rings.
func TestObsServeSoakTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(512)
	plan := &FaultPlan{
		OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
		DanglingObject: 9, DanglingEvery: 2,
	}
	cfg := Config{
		Shards:   2,
		Workers:  2,
		HeapSize: 2 << 20,
		Sessions: 1200,
		Seed:     31,
		FreeMode: FreeRemote,
		Faults:   plan,
		Mitigate: staticMit{
			pads: map[int]int{plan.OverflowObject: plan.OverflowReach + 8},
			quar: map[int]bool{plan.DanglingObject: true},
		},
		Obs:   reg,
		Trace: rec,
	}
	res := soak(t, cfg)

	// One metric per layer proves the unified tree; exact values are
	// cross-checked against the result where the soak pins them.
	for _, m := range []string{
		"vmem.loads", "core.mallocs", "serve.sessions",
		"heal.corruptions", "heal.quarantined_frees",
	} {
		if _, ok := reg.Get(m); !ok {
			t.Errorf("metric %s missing from registry", m)
		}
	}
	if v, _ := reg.Get("serve.sessions"); v != float64(cfg.Sessions) {
		t.Errorf("serve.sessions = %v, want %d", v, cfg.Sessions)
	}
	if v, _ := reg.Get("heal.quarantined_frees"); v != float64(res.QuarantinedFrees) {
		t.Errorf("heal.quarantined_frees = %v, want %d", v, res.QuarantinedFrees)
	}
	if v, _ := reg.Get("core.mallocs"); v == 0 {
		t.Error("core.mallocs gauge reads 0 after a soak")
	}
	if v, ok := reg.Get("serve.session_ns", obs.Label{Name: "worker", Value: "0"}); !ok || v == 0 {
		t.Errorf("worker 0 latency histogram missing or empty (v=%v ok=%v)", v, ok)
	}

	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	kinds := map[string]bool{}
	workerRing, shardRing := false, false
	for i, e := range evs {
		if i > 0 && evs[i-1].Seq >= e.Seq {
			t.Fatalf("merged timeline not stamp-ordered at %d: %d then %d", i, evs[i-1].Seq, e.Seq)
		}
		kinds[e.Kind] = true
		if e.Worker < cfg.Workers {
			workerRing = true
		}
		if e.Worker >= shardRingBase {
			shardRing = true
		}
	}
	for _, k := range []string{"session", "malloc", "quarantine"} {
		if !kinds[k] {
			t.Errorf("no %q events in the merged timeline (saw %v)", k, kinds)
		}
	}
	if !workerRing || !shardRing {
		t.Errorf("timeline missing a ring family: worker=%v shard=%v", workerRing, shardRing)
	}
}
