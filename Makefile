# Convenience targets for the DieHard reproduction.

GO ?= go

.PHONY: all build vet test race bench bench-baseline bench-smoke fig5

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency tests under the race detector (short mode: skips the long
# statistical reproductions, keeps every concurrency test).
race:
	$(GO) test -race -short ./...

# Full benchmark sweep (paper figures + ablations).
bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

# Record the memory-system perf baseline into BENCH_vmem.json under the
# given LABEL (see cmd/vmembench). CI prints the live numbers; this file
# is the repo's perf trajectory.
LABEL ?= current
bench-baseline:
	$(GO) run ./cmd/vmembench -label $(LABEL) -out BENCH_vmem.json

# Perf gate: lock-free malloc w1 within 15% of the locked reference
# engine (writes nothing; safe on any host).
bench-smoke:
	$(GO) run ./cmd/vmembench -smoke

# Reproduce Figure 5 on both platforms.
fig5:
	$(GO) run ./cmd/overhead -platform linux
	$(GO) run ./cmd/overhead -platform windows
